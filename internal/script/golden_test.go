package script

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bcwan/internal/bccrypto"
)

// rsaPairVectors mirrors testdata/checkrsa512pair.json.
type rsaPairVectors struct {
	Comment string `json:"comment"`
	Vectors []struct {
		Name    string `json:"name"`
		Comment string `json:"comment"`
		Priv    string `json:"priv"`
		Pub     string `json:"pub"`
		Valid   bool   `json:"valid"`
	} `json:"vectors"`
}

// TestCheckRSA512PairGoldenVectors pins OP_CHECKRSA512PAIR to committed
// key material: the paper's custom opcode is consensus-critical, so its
// accept/reject behavior must not drift across refactors.
func TestCheckRSA512PairGoldenVectors(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "checkrsa512pair.json"))
	if err != nil {
		t.Fatalf("read vectors: %v", err)
	}
	var vecs rsaPairVectors
	if err := json.Unmarshal(raw, &vecs); err != nil {
		t.Fatalf("decode vectors: %v", err)
	}
	if len(vecs.Vectors) < 4 {
		t.Fatalf("only %d vectors, corpus truncated?", len(vecs.Vectors))
	}
	for _, v := range vecs.Vectors {
		t.Run(v.Name, func(t *testing.T) {
			priv, err := hex.DecodeString(v.Priv)
			if err != nil {
				t.Fatalf("priv hex: %v", err)
			}
			pub, err := hex.DecodeString(v.Pub)
			if err != nil {
				t.Fatalf("pub hex: %v", err)
			}
			unlock := NewBuilder().AddData(priv).Script()
			lock := NewBuilder().AddData(pub).AddOp(OpCheckRSA512Pair).Script()
			err = Verify(unlock, lock, nil)
			if v.Valid && err != nil {
				t.Fatalf("valid pair rejected: %v", err)
			}
			if !v.Valid {
				if err == nil {
					t.Fatal("invalid pair accepted")
				}
				// The opcode must push false (leaving a falsy stack), not
				// abort mid-script: aborting would make Listing 1's
				// OP_ELSE refund branch unreachable.
				if !errors.Is(err, ErrScriptFalse) {
					t.Fatalf("expected a false result, got abort: %v", err)
				}
			}
		})
	}
}

// TestGoldenVectorsMatchWireFormat cross-checks the committed material
// against the bccrypto codec so the vectors cannot rot silently.
func TestGoldenVectorsMatchWireFormat(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "checkrsa512pair.json"))
	if err != nil {
		t.Fatalf("read vectors: %v", err)
	}
	var vecs rsaPairVectors
	if err := json.Unmarshal(raw, &vecs); err != nil {
		t.Fatalf("decode vectors: %v", err)
	}
	for _, v := range vecs.Vectors {
		if v.Name != "valid-pair" {
			continue
		}
		priv, _ := hex.DecodeString(v.Priv)
		pub, _ := hex.DecodeString(v.Pub)
		sk, err := bccrypto.UnmarshalRSA512PrivateKey(priv)
		if err != nil {
			t.Fatalf("golden private key does not unmarshal: %v", err)
		}
		pk, err := bccrypto.UnmarshalRSA512PublicKey(pub)
		if err != nil {
			t.Fatalf("golden public key does not unmarshal: %v", err)
		}
		if !sk.MatchesPublic(pk) {
			t.Fatal("golden valid-pair material does not match at the crypto layer")
		}
		return
	}
	t.Fatal("valid-pair vector missing from corpus")
}
