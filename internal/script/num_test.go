package script

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeNumVectors(t *testing.T) {
	tests := []struct {
		n    int64
		want []byte
	}{
		{0, nil},
		{1, []byte{0x01}},
		{-1, []byte{0x81}},
		{127, []byte{0x7f}},
		{-127, []byte{0xff}},
		{128, []byte{0x80, 0x00}},
		{-128, []byte{0x80, 0x80}},
		{255, []byte{0xff, 0x00}},
		{256, []byte{0x00, 0x01}},
		{-255, []byte{0xff, 0x80}},
		{32767, []byte{0xff, 0x7f}},
		{32768, []byte{0x00, 0x80, 0x00}},
		{100, []byte{0x64}},
		{1000, []byte{0xe8, 0x03}},
		{500000, []byte{0x20, 0xa1, 0x07}},
	}
	for _, tt := range tests {
		if got := encodeNum(tt.n); !bytes.Equal(got, tt.want) {
			t.Errorf("encodeNum(%d) = %x, want %x", tt.n, got, tt.want)
		}
	}
}

func TestDecodeNumRoundTripQuick(t *testing.T) {
	f := func(n int64) bool {
		// Limit to the 5-byte range CLTV permits.
		n %= 1 << 39
		got, err := decodeNum(encodeNum(n), maxNumLen)
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNumRejectsNonMinimal(t *testing.T) {
	cases := [][]byte{
		{0x00},             // zero must be empty
		{0x01, 0x00},       // redundant trailing zero
		{0x80},             // negative zero
		{0x01, 0x80},       // negative zero tail... actually -1 non-minimal? 0x01,0x80 = -1 encoded in 2 bytes
		{0xff, 0x00, 0x00}, // redundant
	}
	for _, c := range cases {
		if _, err := decodeNum(c, maxNumLen); err == nil {
			t.Errorf("decodeNum(%x) accepted non-minimal encoding", c)
		}
	}
}

func TestDecodeNumRejectsTooLong(t *testing.T) {
	if _, err := decodeNum([]byte{1, 2, 3, 4, 5, 6}, maxNumLen); !errors.Is(err, ErrNumberTooLarge) {
		t.Fatalf("err = %v, want ErrNumberTooLarge", err)
	}
}

func TestIsTruthy(t *testing.T) {
	tests := []struct {
		in   []byte
		want bool
	}{
		{nil, false},
		{[]byte{}, false},
		{[]byte{0x00}, false},
		{[]byte{0x00, 0x00}, false},
		{[]byte{0x80}, false},       // negative zero
		{[]byte{0x00, 0x80}, false}, // negative zero, two bytes
		{[]byte{0x01}, true},
		{[]byte{0x00, 0x01}, true},
		{[]byte{0x80, 0x00}, true}, // 128
		{[]byte{0xff}, true},
	}
	for _, tt := range tests {
		if got := isTruthy(tt.in); got != tt.want {
			t.Errorf("isTruthy(%x) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
