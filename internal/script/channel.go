package script

// Payment-channel locking script. A recipient (the funder) locks channel
// capacity into an output that is spendable either

//   - cooperatively/by commitment: with signatures from BOTH the gateway
//     and the recipient (the 2-of-2 path used by commitment and close
//     transactions), or
//   - by refund: with the funder's signature alone once the spending
//     transaction's lock time reaches the refund height (CLTV path),
//     reclaiming an abandoned channel.
//
// The engine has no OP_CHECKMULTISIG, so the 2-of-2 is spelled out with
// OP_CHECKSIGVERIFY + OP_CHECKSIG inside the OP_IF branch; the unlocking
// script selects the branch with a trailing OP_TRUE/OP_FALSE push.

// ChannelParams carries the fields of the channel funding script.
type ChannelParams struct {
	// GatewayPubKey is the payee's EC public key (serialized with
	// bccrypto ECKey.PublicBytes).
	GatewayPubKey []byte
	// RecipientPubKey is the funder/payer's EC public key.
	RecipientPubKey []byte
	// RefundHeight is the absolute block height at which the funder may
	// unilaterally reclaim the capacity. A spending transaction with
	// LockTime >= RefundHeight satisfies the CLTV check.
	RefundHeight int64
	// FunderPubKeyHash is the refund destination (the recipient).
	FunderPubKeyHash [HashLen]byte
}

// Channel builds the channel funding locking script:
//
//	OP_IF
//	    <gatewayPubKey> OP_CHECKSIGVERIFY <recipientPubKey> OP_CHECKSIG
//	OP_ELSE
//	    <refundHeight> OP_CHECKLOCKTIMEVERIFY OP_VERIFY
//	    OP_DUP OP_HASH160 <funderPubKeyHash> OP_EQUALVERIFY OP_CHECKSIG
//	OP_ENDIF
func Channel(p ChannelParams) Script {
	return NewBuilder().
		AddOp(OpIf).
		AddData(p.GatewayPubKey).
		AddOp(OpCheckSigVerify).
		AddData(p.RecipientPubKey).
		AddOp(OpCheckSig).
		AddOp(OpElse).
		AddInt64(p.RefundHeight).
		AddOp(OpCheckLockTime).
		AddOp(OpVerify).
		AddOp(OpDup).
		AddOp(OpHash160).
		AddData(p.FunderPubKeyHash[:]).
		AddOp(OpEqualVerify).
		AddOp(OpCheckSig).
		AddOp(OpEndIf).
		Script()
}

// UnlockChannelClose builds the 2-of-2 unlocking script for commitment and
// cooperative-close transactions: <recipientSig> <gatewaySig> OP_TRUE. Both
// signatures commit to the same digest (the spending transaction signed
// against the funding script).
func UnlockChannelClose(recipientSig, gatewaySig []byte) Script {
	return NewBuilder().
		AddData(recipientSig).
		AddData(gatewaySig).
		AddOp(OpTrue).
		Script()
}

// UnlockChannelRefund builds the funder's unlocking script for the refund
// path after the lock time: <sig> <pubKey> OP_FALSE.
func UnlockChannelRefund(sig, pubKey []byte) Script {
	return NewBuilder().AddData(sig).AddData(pubKey).AddOp(OpFalse).Script()
}

func isChannel(instrs []Instruction) bool {
	ops := []Opcode{
		OpIf, 0, OpCheckSigVerify, 0, OpCheckSig,
		OpElse, 0, OpCheckLockTime, OpVerify,
		OpDup, OpHash160, 0, OpEqualVerify, OpCheckSig, OpEndIf,
	}
	if len(instrs) != len(ops) {
		return false
	}
	for i, want := range ops {
		if want == 0 {
			continue // data push slot
		}
		if instrs[i].Op != want {
			return false
		}
	}
	return len(instrs[11].Data) == HashLen &&
		len(instrs[1].Data) > 0 && len(instrs[3].Data) > 0
}

// ParseChannel extracts the parameters of a channel funding script.
func ParseChannel(s Script) (ChannelParams, error) {
	instrs, err := Parse(s)
	if err != nil {
		return ChannelParams{}, err
	}
	if !isChannel(instrs) {
		return ChannelParams{}, ErrNotTemplate
	}
	var p ChannelParams
	p.GatewayPubKey = append([]byte(nil), instrs[1].Data...)
	p.RecipientPubKey = append([]byte(nil), instrs[3].Data...)
	copy(p.FunderPubKeyHash[:], instrs[11].Data)
	height, err := instructionNum(instrs[6])
	if err != nil {
		return ChannelParams{}, err
	}
	p.RefundHeight = height
	return p, nil
}
