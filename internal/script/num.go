package script

import "errors"

// Script numbers use Bitcoin's minimal little-endian sign-magnitude
// encoding: the most significant bit of the last byte is the sign, and no
// redundant trailing bytes are allowed when decoding operands.

// maxNumLen bounds operand size for arithmetic opcodes. CLTV heights use
// up to 5 bytes, matching BIP-65.
const maxNumLen = 5

// ErrNumberTooLarge reports an arithmetic operand above the size limit.
var ErrNumberTooLarge = errors.New("script: number operand too large")

// ErrNonMinimalNumber reports a number with redundant trailing bytes.
var ErrNonMinimalNumber = errors.New("script: non-minimal number encoding")

// encodeNum converts n to its minimal script encoding.
func encodeNum(n int64) []byte {
	if n == 0 {
		return nil
	}
	neg := n < 0
	mag := n
	if neg {
		mag = -mag
	}
	out := make([]byte, 0, 9)
	for mag > 0 {
		out = append(out, byte(mag&0xff))
		mag >>= 8
	}
	// If the top bit of the last byte is set, append a sign byte;
	// otherwise fold the sign into it.
	if out[len(out)-1]&0x80 != 0 {
		if neg {
			out = append(out, 0x80)
		} else {
			out = append(out, 0x00)
		}
	} else if neg {
		out[len(out)-1] |= 0x80
	}
	return out
}

// decodeNum parses a minimally encoded script number of at most maxLen
// bytes.
func decodeNum(b []byte, maxLen int) (int64, error) {
	if len(b) > maxLen {
		return 0, ErrNumberTooLarge
	}
	if len(b) == 0 {
		return 0, nil
	}
	// Reject non-minimal encodings: the last byte may not be a bare sign
	// byte unless the bit below it is in use.
	last := b[len(b)-1]
	if last&0x7f == 0 {
		if len(b) == 1 || b[len(b)-2]&0x80 == 0 {
			return 0, ErrNonMinimalNumber
		}
	}
	var mag uint64
	for i := len(b) - 1; i >= 0; i-- {
		v := b[i]
		if i == len(b)-1 {
			v &= 0x7f
		}
		mag = mag<<8 | uint64(v)
	}
	n := int64(mag)
	if last&0x80 != 0 {
		n = -n
	}
	return n, nil
}

// isTruthy implements script truthiness: any nonzero byte makes the value
// true, except that negative zero (all zero bytes with only the sign bit
// set) is false.
func isTruthy(b []byte) bool {
	for i, v := range b {
		if v != 0 {
			// Negative zero: sign bit alone in the final byte.
			if i == len(b)-1 && v == 0x80 {
				return false
			}
			return true
		}
	}
	return false
}
