package script

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"sync"
	"testing"

	"bcwan/internal/bccrypto"
)

// fakeContext is a test Context with scriptable behaviour.
type fakeContext struct {
	sigOK    func(sig, pubKey []byte) bool
	lockTime int64
}

func (c fakeContext) CheckSig(sig, pubKey []byte) bool {
	if c.sigOK == nil {
		return false
	}
	return c.sigOK(sig, pubKey)
}

func (c fakeContext) LockTime() int64 { return c.lockTime }

// alwaysValidSig accepts any (sig, pubKey) pair.
var alwaysValidSig = fakeContext{sigOK: func(_, _ []byte) bool { return true }}

func mustRun(t *testing.T, unlock, lock Script, ctx Context) {
	t.Helper()
	if err := Verify(unlock, lock, ctx); err != nil {
		t.Fatalf("Verify(%s | %s) = %v, want nil", unlock, lock, err)
	}
}

func mustFail(t *testing.T, unlock, lock Script, ctx Context, want error) {
	t.Helper()
	err := Verify(unlock, lock, ctx)
	if err == nil {
		t.Fatalf("Verify(%s | %s) succeeded, want error", unlock, lock)
	}
	if want != nil && !errors.Is(err, want) {
		t.Fatalf("Verify error = %v, want %v", err, want)
	}
}

func TestVerifySimpleTruthy(t *testing.T) {
	mustRun(t,
		NewBuilder().AddInt64(2).Script(),
		NewBuilder().AddInt64(2).AddOp(OpEqual).Script(),
		nil)
}

func TestVerifyFalseResult(t *testing.T) {
	mustFail(t,
		NewBuilder().AddInt64(2).Script(),
		NewBuilder().AddInt64(3).AddOp(OpEqual).Script(),
		nil, ErrScriptFalse)
}

func TestVerifyEmptyStackFails(t *testing.T) {
	mustFail(t, Script{}, Script{}, nil, ErrScriptFalse)
}

func TestVerifyRejectsNonPushOnlyUnlock(t *testing.T) {
	mustFail(t,
		NewBuilder().AddOp(OpDup).Script(),
		NewBuilder().AddInt64(1).Script(),
		nil, ErrUnlockNotPushOnly)
}

func TestStackOps(t *testing.T) {
	tests := []struct {
		name string
		lock *Builder
		ok   bool
	}{
		{"dup", NewBuilder().AddInt64(5).AddOp(OpDup).AddOp(OpEqual), true},
		{"drop", NewBuilder().AddInt64(1).AddInt64(0).AddOp(OpDrop), true},
		{"swap", NewBuilder().AddInt64(0).AddInt64(1).AddOp(OpSwap).AddOp(OpDrop), true},
		{"nip", NewBuilder().AddInt64(0).AddInt64(1).AddOp(OpNip), true},
		{"over", NewBuilder().AddInt64(1).AddInt64(0).AddOp(OpOver), true},
		{"size", NewBuilder().AddData([]byte("abcd")).AddOp(OpSize).AddInt64(4).AddOp(OpEqual).AddOp(OpNip), true},
		{"depth", NewBuilder().AddInt64(7).AddInt64(7).AddOp(OpDepth).AddInt64(2).AddOp(OpEqual), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Verify(nil, tt.lock.Script(), nil)
			if tt.ok && err != nil {
				t.Fatalf("err = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestStackUnderflow(t *testing.T) {
	for _, op := range []Opcode{OpDup, OpDrop, OpSwap, OpEqual, OpVerify, OpHash160, OpCheckSig, OpNot, OpAdd} {
		lock := NewBuilder().AddOp(op).Script()
		mustFail(t, nil, lock, nil, ErrStackUnderflow)
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		lock Script
	}{
		{"add", NewBuilder().AddInt64(40).AddInt64(2).AddOp(OpAdd).AddInt64(42).AddOp(OpEqual).Script()},
		{"sub", NewBuilder().AddInt64(44).AddInt64(2).AddOp(OpSub).AddInt64(42).AddOp(OpEqual).Script()},
		{"lt", NewBuilder().AddInt64(1).AddInt64(2).AddOp(OpLessThan).Script()},
		{"gt", NewBuilder().AddInt64(2).AddInt64(1).AddOp(OpGreaterThan).Script()},
		{"le", NewBuilder().AddInt64(2).AddInt64(2).AddOp(OpLessThanOrEqual).Script()},
		{"ge", NewBuilder().AddInt64(2).AddInt64(2).AddOp(OpGreaterThanOrEqual).Script()},
		{"min", NewBuilder().AddInt64(9).AddInt64(3).AddOp(OpMin).AddInt64(3).AddOp(OpEqual).Script()},
		{"max", NewBuilder().AddInt64(9).AddInt64(3).AddOp(OpMax).AddInt64(9).AddOp(OpEqual).Script()},
		{"not-zero", NewBuilder().AddInt64(0).AddOp(OpNot).Script()},
		{"booland", NewBuilder().AddInt64(1).AddInt64(2).AddOp(OpBoolAnd).Script()},
		{"boolor", NewBuilder().AddInt64(0).AddInt64(2).AddOp(OpBoolOr).Script()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mustRun(t, nil, tt.lock, nil)
		})
	}
}

func TestNegativeNumbers(t *testing.T) {
	mustRun(t, nil, NewBuilder().AddInt64(-5).AddInt64(7).AddOp(OpAdd).AddInt64(2).AddOp(OpEqual).Script(), nil)
	mustRun(t, nil, NewBuilder().AddInt64(2).AddInt64(5).AddOp(OpSub).AddInt64(-3).AddOp(OpEqual).Script(), nil)
}

func TestConditionals(t *testing.T) {
	tests := []struct {
		name   string
		unlock Script
		lock   Script
		ok     bool
	}{
		{
			"if-true",
			NewBuilder().AddInt64(1).Script(),
			NewBuilder().AddOp(OpIf).AddInt64(10).AddOp(OpElse).AddInt64(20).AddOp(OpEndIf).AddInt64(10).AddOp(OpEqual).Script(),
			true,
		},
		{
			"if-false",
			NewBuilder().AddInt64(0).Script(),
			NewBuilder().AddOp(OpIf).AddInt64(10).AddOp(OpElse).AddInt64(20).AddOp(OpEndIf).AddInt64(20).AddOp(OpEqual).Script(),
			true,
		},
		{
			"notif",
			NewBuilder().AddInt64(0).Script(),
			NewBuilder().AddOp(OpNotIf).AddInt64(1).AddOp(OpEndIf).Script(),
			true,
		},
		{
			"nested",
			NewBuilder().AddInt64(1).AddInt64(1).Script(),
			NewBuilder().
				AddOp(OpIf).
				AddOp(OpIf).AddInt64(42).AddOp(OpElse).AddInt64(1).AddOp(OpEndIf).
				AddOp(OpElse).AddInt64(2).
				AddOp(OpEndIf).
				AddInt64(42).AddOp(OpEqual).Script(),
			true,
		},
		{
			"skipped-inner-else",
			NewBuilder().AddInt64(0).Script(),
			NewBuilder().
				AddOp(OpIf).
				AddOp(OpIf).AddInt64(1).AddOp(OpElse).AddInt64(2).AddOp(OpEndIf).
				AddOp(OpElse).AddInt64(3).
				AddOp(OpEndIf).
				AddInt64(3).AddOp(OpEqual).Script(),
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Verify(tt.unlock, tt.lock, nil)
			if tt.ok && err != nil {
				t.Fatalf("err = %v", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestUnbalancedConditionals(t *testing.T) {
	mustFail(t, nil, NewBuilder().AddInt64(1).AddOp(OpIf).Script(), nil, ErrUnbalancedIf)
	mustFail(t, nil, NewBuilder().AddOp(OpEndIf).Script(), nil, ErrUnbalancedIf)
	mustFail(t, nil, NewBuilder().AddOp(OpElse).Script(), nil, ErrUnbalancedIf)
}

func TestOpReturnAborts(t *testing.T) {
	mustFail(t, nil, NullData([]byte("ip=10.0.0.1")), nil, ErrEarlyReturn)
}

func TestOpVerify(t *testing.T) {
	mustRun(t, nil, NewBuilder().AddInt64(1).AddOp(OpVerify).AddInt64(1).Script(), nil)
	mustFail(t, nil, NewBuilder().AddInt64(0).AddOp(OpVerify).AddInt64(1).Script(), nil, ErrVerifyFailed)
}

func TestHashOpcodes(t *testing.T) {
	data := []byte("bcwan")
	h160 := bccrypto.Hash160(data)
	mustRun(t, nil, NewBuilder().AddData(data).AddOp(OpHash160).AddData(h160[:]).AddOp(OpEqual).Script(), nil)

	h256 := bccrypto.DoubleSHA256(data)
	mustRun(t, nil, NewBuilder().AddData(data).AddOp(OpHash256).AddData(h256[:]).AddOp(OpEqual).Script(), nil)
}

func TestCheckSigDelegatesToContext(t *testing.T) {
	var gotSig, gotPub []byte
	ctx := fakeContext{sigOK: func(sig, pub []byte) bool {
		gotSig, gotPub = sig, pub
		return true
	}}
	unlock := UnlockP2PKH([]byte("SIG"), []byte("PUB"))
	lock := NewBuilder().AddOp(OpCheckSig).Script()
	mustRun(t, unlock, lock, ctx)
	if string(gotSig) != "SIG" || string(gotPub) != "PUB" {
		t.Fatalf("CheckSig got (%q, %q), want (SIG, PUB)", gotSig, gotPub)
	}
}

func TestCheckSigVerifyFails(t *testing.T) {
	unlock := UnlockP2PKH([]byte("SIG"), []byte("PUB"))
	lock := NewBuilder().AddOp(OpCheckSigVerify).AddInt64(1).Script()
	mustFail(t, unlock, lock, fakeContext{}, ErrCheckSigFailed)
}

func TestCheckLockTime(t *testing.T) {
	lock := NewBuilder().AddInt64(100).AddOp(OpCheckLockTime).AddOp(OpVerify).AddInt64(1).Script()
	mustRun(t, nil, lock, fakeContext{lockTime: 100})
	mustRun(t, nil, lock, fakeContext{lockTime: 150})
	mustFail(t, nil, lock, fakeContext{lockTime: 99}, ErrLockTimeNotReached)
}

func TestP2PKHEndToEnd(t *testing.T) {
	pub := []byte("serialized-ecdsa-public-key")
	hash := bccrypto.Hash160(pub)
	lock := PayToPubKeyHash(hash)

	if got := Classify(lock); got != ClassP2PKH {
		t.Fatalf("Classify = %v, want p2pkh", got)
	}
	gotHash, err := ExtractP2PKHHash(lock)
	if err != nil || gotHash != hash {
		t.Fatalf("ExtractP2PKHHash = %x, %v", gotHash, err)
	}

	mustRun(t, UnlockP2PKH([]byte("sig"), pub), lock, alwaysValidSig)
	// Wrong public key fails at OP_EQUALVERIFY.
	mustFail(t, UnlockP2PKH([]byte("sig"), []byte("other")), lock, alwaysValidSig, ErrEqualVerifyFailed)
	// Bad signature fails at OP_CHECKSIG (script evaluates to false).
	mustFail(t, UnlockP2PKH([]byte("sig"), pub), lock, fakeContext{}, ErrScriptFalse)
}

// rsaTestKeys caches RSA keypairs for the fair-exchange script tests.
var (
	rsaOnce sync.Once
	rsaKeyA *bccrypto.RSA512PrivateKey
	rsaKeyB *bccrypto.RSA512PrivateKey
)

func rsaKeys(t testing.TB) (*bccrypto.RSA512PrivateKey, *bccrypto.RSA512PrivateKey) {
	t.Helper()
	rsaOnce.Do(func() {
		var err error
		if rsaKeyA, err = bccrypto.GenerateRSA512(rand.Reader); err != nil {
			panic(err)
		}
		if rsaKeyB, err = bccrypto.GenerateRSA512(rand.Reader); err != nil {
			panic(err)
		}
	})
	return rsaKeyA, rsaKeyB
}

func keyReleaseFixture(t testing.TB) (KeyReleaseParams, *bccrypto.RSA512PrivateKey, []byte, []byte) {
	t.Helper()
	eKey, _ := rsaKeys(t)
	gatewayPub := []byte("gateway-ecdsa-pub")
	buyerPub := []byte("buyer-ecdsa-pub")
	params := KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: bccrypto.Hash160(gatewayPub),
		RefundHeight:      1100,
		BuyerPubKeyHash:   bccrypto.Hash160(buyerPub),
	}
	return params, eKey, gatewayPub, buyerPub
}

func TestKeyReleaseClaimPath(t *testing.T) {
	params, eKey, gatewayPub, _ := keyReleaseFixture(t)
	lock := KeyRelease(params)

	unlock := UnlockKeyReleaseClaim(
		[]byte("sig"), gatewayPub, bccrypto.MarshalRSA512PrivateKey(eKey))
	mustRun(t, unlock, lock, alwaysValidSig)
}

func TestKeyReleaseClaimWrongRSAKeyFails(t *testing.T) {
	params, _, gatewayPub, _ := keyReleaseFixture(t)
	_, otherKey := rsaKeys(t)
	lock := KeyRelease(params)

	// A different RSA key fails the pair check, falls into the refund
	// branch, and then fails CLTV (lock time 0 < 1100).
	unlock := UnlockKeyReleaseClaim(
		[]byte("sig"), gatewayPub, bccrypto.MarshalRSA512PrivateKey(otherKey))
	mustFail(t, unlock, lock, alwaysValidSig, ErrLockTimeNotReached)
}

func TestKeyReleaseClaimWrongGatewayKeyFails(t *testing.T) {
	params, eKey, _, _ := keyReleaseFixture(t)
	lock := KeyRelease(params)

	// Correct RSA pair but a thief's ECDSA key: OP_EQUALVERIFY on the
	// gateway pubkey hash fails — only the gateway can be paid.
	unlock := UnlockKeyReleaseClaim(
		[]byte("sig"), []byte("thief"), bccrypto.MarshalRSA512PrivateKey(eKey))
	mustFail(t, unlock, lock, alwaysValidSig, ErrEqualVerifyFailed)
}

func TestKeyReleaseRefundPath(t *testing.T) {
	params, _, _, buyerPub := keyReleaseFixture(t)
	lock := KeyRelease(params)
	unlock := UnlockKeyReleaseRefund([]byte("sig"), buyerPub)

	// Before the refund height: CLTV rejects.
	mustFail(t, unlock, lock, fakeContext{sigOK: func(_, _ []byte) bool { return true }, lockTime: 1000}, ErrLockTimeNotReached)
	// At/after the refund height: refund succeeds.
	mustRun(t, unlock, lock, fakeContext{sigOK: func(_, _ []byte) bool { return true }, lockTime: 1100})
}

func TestKeyReleaseRefundWrongBuyerFails(t *testing.T) {
	params, _, _, _ := keyReleaseFixture(t)
	lock := KeyRelease(params)
	unlock := UnlockKeyReleaseRefund([]byte("sig"), []byte("mallory"))
	mustFail(t, unlock, lock,
		fakeContext{sigOK: func(_, _ []byte) bool { return true }, lockTime: 2000},
		ErrEqualVerifyFailed)
}

func TestKeyReleaseGatewayCannotTakeRefundPath(t *testing.T) {
	params, _, _, _ := keyReleaseFixture(t)
	lock := KeyRelease(params)
	// Gateway tries the refund path with its own key after expiry.
	unlock := UnlockKeyReleaseRefund([]byte("sig"), []byte("gateway-ecdsa-pub"))
	mustFail(t, unlock, lock,
		fakeContext{sigOK: func(_, _ []byte) bool { return true }, lockTime: 2000},
		ErrEqualVerifyFailed)
}

func TestKeyReleaseParseRoundTrip(t *testing.T) {
	params, _, _, _ := keyReleaseFixture(t)
	lock := KeyRelease(params)

	if got := Classify(lock); got != ClassKeyRelease {
		t.Fatalf("Classify = %v, want keyrelease", got)
	}
	back, err := ParseKeyRelease(lock)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.RSAPubKey, params.RSAPubKey) {
		t.Error("RSAPubKey mismatch")
	}
	if back.GatewayPubKeyHash != params.GatewayPubKeyHash {
		t.Error("GatewayPubKeyHash mismatch")
	}
	if back.BuyerPubKeyHash != params.BuyerPubKeyHash {
		t.Error("BuyerPubKeyHash mismatch")
	}
	if back.RefundHeight != params.RefundHeight {
		t.Errorf("RefundHeight = %d, want %d", back.RefundHeight, params.RefundHeight)
	}
}

func TestExtractClaimedRSAKey(t *testing.T) {
	params, eKey, gatewayPub, _ := keyReleaseFixture(t)
	_ = params
	privBytes := bccrypto.MarshalRSA512PrivateKey(eKey)
	unlock := UnlockKeyReleaseClaim([]byte("sig"), gatewayPub, privBytes)

	got, err := ExtractClaimedRSAKey(unlock)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, privBytes) {
		t.Fatal("extracted key mismatch")
	}

	if _, err := ExtractClaimedRSAKey(UnlockP2PKH([]byte("s"), []byte("p"))); !errors.Is(err, ErrNotTemplate) {
		t.Fatalf("err = %v, want ErrNotTemplate", err)
	}
}

func TestOpCheckRSA512PairGarbageInputs(t *testing.T) {
	// Garbage key material must push false (reachable ELSE), not abort.
	lock := NewBuilder().
		AddData([]byte("not-a-public-key")).
		AddOp(OpCheckRSA512Pair).
		AddOp(OpNotIf).AddInt64(1).AddOp(OpEndIf).
		Script()
	unlock := NewBuilder().AddData([]byte("not-a-private-key")).Script()
	mustRun(t, unlock, lock, nil)
}

func TestOpsLimit(t *testing.T) {
	b := NewBuilder().AddInt64(1)
	for i := 0; i < maxOpsPerEval+1; i++ {
		b.AddOp(OpDup).AddOp(OpDrop)
	}
	mustFail(t, nil, b.Script(), nil, ErrTooManyOps)
}

func TestStackSizeLimit(t *testing.T) {
	// A single push repeated beyond the stack limit must fail. Build the
	// script manually to avoid the ops limit (pushes are not ops).
	b := NewBuilder()
	for i := 0; i < maxStackSize+1; i++ {
		b.AddData([]byte{1})
	}
	mustFail(t, nil, b.Script(), nil, ErrStackOverflow)
}

func TestDisabledOpcode(t *testing.T) {
	mustFail(t, nil, Script{0xfe}, nil, ErrDisabledOpcode)
}

func TestNullDataRoundTrip(t *testing.T) {
	payload := []byte("R=1abc;ip=192.0.2.10:7000")
	s := NullData(payload)
	if got := Classify(s); got != ClassOpReturn {
		t.Fatalf("Classify = %v, want nulldata", got)
	}
	got, err := ExtractNullData(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if _, err := ExtractNullData(PayToPubKeyHash([20]byte{})); !errors.Is(err, ErrNotTemplate) {
		t.Fatalf("err = %v, want ErrNotTemplate", err)
	}
}

func BenchmarkVerifyP2PKH(b *testing.B) {
	pub := []byte("serialized-ecdsa-public-key")
	lock := PayToPubKeyHash(bccrypto.Hash160(pub))
	unlock := UnlockP2PKH([]byte("sig"), pub)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(unlock, lock, alwaysValidSig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyKeyReleaseClaim(b *testing.B) {
	params, eKey, gatewayPub, _ := keyReleaseFixture(b)
	lock := KeyRelease(params)
	unlock := UnlockKeyReleaseClaim([]byte("sig"), gatewayPub, bccrypto.MarshalRSA512PrivateKey(eKey))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(unlock, lock, alwaysValidSig); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOpSHA256(t *testing.T) {
	data := []byte("bcwan")
	sum := sha256.Sum256(data)
	mustRun(t, nil, NewBuilder().AddData(data).AddOp(OpSHA256).AddData(sum[:]).AddOp(OpEqual).Script(), nil)
}

func TestHashPreimageLock(t *testing.T) {
	// The §2 example: an output locked to the preimage of a sha256
	// hash ("the user that desires to unlock the amount would have to
	// reveal the preimage").
	preimage := []byte("the-secret-preimage")
	sum := sha256.Sum256(preimage)
	lock := NewBuilder().AddOp(OpSHA256).AddData(sum[:]).AddOp(OpEqual).Script()

	mustRun(t, NewBuilder().AddData(preimage).Script(), lock, nil)
	mustFail(t, NewBuilder().AddData([]byte("wrong")).Script(), lock, nil, ErrScriptFalse)
}

func TestElementSizeLimit(t *testing.T) {
	// Elements above 520 bytes may be pushed by the parser but the
	// engine rejects constructing them (e.g. via OP_DUP of a parsed
	// oversized push is impossible since push itself fails).
	big := make([]byte, maxElementSize+1)
	lock := NewBuilder().AddData(big).Script()
	mustFail(t, nil, lock, nil, nil)
}

func TestNopIsAccepted(t *testing.T) {
	mustRun(t, nil, NewBuilder().AddOp(OpNop).AddInt64(1).Script(), nil)
}
