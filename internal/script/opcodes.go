// Package script implements the blockchain's non-Turing-complete,
// stack-based transaction scripting language (§2 of the paper), modeled on
// Bitcoin script as shipped in Multichain. It provides the operators used
// by BcWAN — including the paper's custom OP_CHECKRSA512PAIR, which pays a
// gateway for disclosing the ephemeral RSA-512 private key matching the
// public key embedded in the payment transaction (Listing 1).
package script

import (
	"fmt"
	"strconv"
)

// Opcode is a single script instruction byte.
type Opcode byte

// Push opcodes. Byte values 0x01–0x4b push that many following bytes.
const (
	// OpFalse pushes the empty array (false).
	OpFalse Opcode = 0x00
	// OpPushData1: the next byte is the length of data to push.
	OpPushData1 Opcode = 0x4c
	// OpPushData2: the next two bytes (little-endian) are the length.
	OpPushData2 Opcode = 0x4d
	// Op1Negate pushes -1.
	Op1Negate Opcode = 0x4f
	// OpTrue (a.k.a. OP_1) pushes 1. Op2..Op16 push 2..16.
	OpTrue Opcode = 0x51
	Op16   Opcode = 0x60

	maxDirectPush = 0x4b
)

// Flow control.
const (
	OpNop    Opcode = 0x61
	OpIf     Opcode = 0x63
	OpNotIf  Opcode = 0x64
	OpElse   Opcode = 0x67
	OpEndIf  Opcode = 0x68
	OpVerify Opcode = 0x69
	OpReturn Opcode = 0x6a
)

// Stack manipulation.
const (
	OpDrop  Opcode = 0x75
	OpDup   Opcode = 0x76
	OpNip   Opcode = 0x77
	OpOver  Opcode = 0x78
	OpSwap  Opcode = 0x7c
	OpSize  Opcode = 0x82
	OpDepth Opcode = 0x74
)

// Comparison and logic.
const (
	OpEqual       Opcode = 0x87
	OpEqualVerify Opcode = 0x88
	OpNot         Opcode = 0x91
	OpBoolAnd     Opcode = 0x9a
	OpBoolOr      Opcode = 0x9b
)

// Arithmetic (script numbers, see num.go).
const (
	OpAdd                Opcode = 0x93
	OpSub                Opcode = 0x94
	OpLessThan           Opcode = 0x9f
	OpGreaterThan        Opcode = 0xa0
	OpLessThanOrEqual    Opcode = 0xa1
	OpGreaterThanOrEqual Opcode = 0xa2
	OpMin                Opcode = 0xa3
	OpMax                Opcode = 0xa4
)

// Crypto.
const (
	OpSHA256         Opcode = 0xa8
	OpHash160        Opcode = 0xa9
	OpHash256        Opcode = 0xaa
	OpCheckSig       Opcode = 0xac
	OpCheckSigVerify Opcode = 0xad
	OpCheckLockTime  Opcode = 0xb1 // OP_CHECKLOCKTIMEVERIFY (BIP-65)
	// OpCheckRSA512Pair is the paper's custom operator: pops an RSA-512
	// public key then a candidate private key and pushes whether they
	// form a valid pair. Implemented in Multichain via OpenSSL's
	// RSA_PrivKey::VerifyPubKey; here via bccrypto.MatchesPublic.
	OpCheckRSA512Pair Opcode = 0xc0
)

var opcodeNames = map[Opcode]string{
	OpFalse:              "OP_0",
	OpPushData1:          "OP_PUSHDATA1",
	OpPushData2:          "OP_PUSHDATA2",
	Op1Negate:            "OP_1NEGATE",
	OpNop:                "OP_NOP",
	OpIf:                 "OP_IF",
	OpNotIf:              "OP_NOTIF",
	OpElse:               "OP_ELSE",
	OpEndIf:              "OP_ENDIF",
	OpVerify:             "OP_VERIFY",
	OpReturn:             "OP_RETURN",
	OpDrop:               "OP_DROP",
	OpDup:                "OP_DUP",
	OpNip:                "OP_NIP",
	OpOver:               "OP_OVER",
	OpSwap:               "OP_SWAP",
	OpSize:               "OP_SIZE",
	OpDepth:              "OP_DEPTH",
	OpEqual:              "OP_EQUAL",
	OpEqualVerify:        "OP_EQUALVERIFY",
	OpNot:                "OP_NOT",
	OpBoolAnd:            "OP_BOOLAND",
	OpBoolOr:             "OP_BOOLOR",
	OpAdd:                "OP_ADD",
	OpSub:                "OP_SUB",
	OpLessThan:           "OP_LESSTHAN",
	OpGreaterThan:        "OP_GREATERTHAN",
	OpLessThanOrEqual:    "OP_LESSTHANOREQUAL",
	OpGreaterThanOrEqual: "OP_GREATERTHANOREQUAL",
	OpMin:                "OP_MIN",
	OpMax:                "OP_MAX",
	OpSHA256:             "OP_SHA256",
	OpHash160:            "OP_HASH160",
	OpHash256:            "OP_HASH256",
	OpCheckSig:           "OP_CHECKSIG",
	OpCheckSigVerify:     "OP_CHECKSIGVERIFY",
	OpCheckLockTime:      "OP_CHECKLOCKTIMEVERIFY",
	OpCheckRSA512Pair:    "OP_CHECKRSA512PAIR",
}

// String returns the canonical OP_* name.
func (op Opcode) String() string {
	if name, ok := opcodeNames[op]; ok {
		return name
	}
	if op >= OpTrue && op <= Op16 {
		return "OP_" + strconv.Itoa(int(op-OpTrue)+1)
	}
	if op >= 0x01 && op <= maxDirectPush {
		return fmt.Sprintf("OP_PUSHBYTES_%d", int(op))
	}
	return fmt.Sprintf("OP_UNKNOWN_0x%02x", byte(op))
}

// IsPush reports whether the opcode only pushes data (including the small
// integer opcodes). Unlocking scripts must consist solely of push opcodes.
func (op Opcode) IsPush() bool {
	switch {
	case op == OpFalse, op == Op1Negate:
		return true
	case op >= 0x01 && op <= maxDirectPush:
		return true
	case op == OpPushData1 || op == OpPushData2:
		return true
	case op >= OpTrue && op <= Op16:
		return true
	}
	return false
}

// smallIntValue returns the value pushed by OP_0/OP_1..OP_16/OP_1NEGATE.
func (op Opcode) smallIntValue() (int64, bool) {
	switch {
	case op == OpFalse:
		return 0, true
	case op == Op1Negate:
		return -1, true
	case op >= OpTrue && op <= Op16:
		return int64(op-OpTrue) + 1, true
	}
	return 0, false
}
