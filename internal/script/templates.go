package script

import (
	"bytes"
	"errors"

	"bcwan/internal/bccrypto"
)

// Standard script templates used by the BcWAN blockchain, plus the paper's
// Listing 1 "Ephemeral Private Key Release Script".

// HashLen is the length of a HASH160 digest used in pay-to-pubkey-hash
// outputs.
const HashLen = bccrypto.Ripemd160Size

// ErrNotTemplate reports a script that does not match the queried
// template.
var ErrNotTemplate = errors.New("script: does not match template")

// Class identifies a recognized locking-script template.
type Class int

// Recognized locking script classes.
const (
	ClassUnknown Class = iota
	ClassP2PKH
	ClassOpReturn
	ClassKeyRelease
	ClassChannel
)

// String names the class for logs.
func (c Class) String() string {
	switch c {
	case ClassP2PKH:
		return "p2pkh"
	case ClassOpReturn:
		return "nulldata"
	case ClassKeyRelease:
		return "keyrelease"
	case ClassChannel:
		return "channel"
	default:
		return "unknown"
	}
}

// PayToPubKeyHash builds the standard locking script
// OP_DUP OP_HASH160 <pubKeyHash> OP_EQUALVERIFY OP_CHECKSIG.
func PayToPubKeyHash(pubKeyHash [HashLen]byte) Script {
	return NewBuilder().
		AddOp(OpDup).
		AddOp(OpHash160).
		AddData(pubKeyHash[:]).
		AddOp(OpEqualVerify).
		AddOp(OpCheckSig).
		Script()
}

// UnlockP2PKH builds the unlocking script <sig> <pubKey> for a P2PKH
// output.
func UnlockP2PKH(sig, pubKey []byte) Script {
	return NewBuilder().AddData(sig).AddData(pubKey).Script()
}

// NullData builds an unspendable OP_RETURN data-carrier output. BcWAN uses
// it to publish gateway IP bindings on-chain (§4.3/§5.1).
func NullData(data []byte) Script {
	return NewBuilder().AddOp(OpReturn).AddData(data).Script()
}

// ExtractNullData returns the payload of an OP_RETURN output.
func ExtractNullData(s Script) ([]byte, error) {
	instrs, err := Parse(s)
	if err != nil {
		return nil, err
	}
	if len(instrs) != 2 || instrs[0].Op != OpReturn {
		return nil, ErrNotTemplate
	}
	return instrs[1].Data, nil
}

// KeyReleaseParams carries the fields of the Listing 1 script.
type KeyReleaseParams struct {
	// RSAPubKey is the gateway's ephemeral RSA-512 public key (ePk),
	// serialized with bccrypto.MarshalRSA512PublicKey.
	RSAPubKey []byte
	// GatewayPubKeyHash receives the payment when the matching private
	// key is revealed (<pubKeyHash> in Listing 1).
	GatewayPubKeyHash [HashLen]byte
	// RefundHeight is the absolute block height after which the buyer
	// may reclaim the funds (<block_height+100> in Listing 1).
	RefundHeight int64
	// BuyerPubKeyHash is the refund destination (<buyerPubkeyHash>).
	BuyerPubKeyHash [HashLen]byte
}

// KeyRelease builds the paper's Listing 1 locking script:
//
//	<rsaPubKey>
//	OP_CHECKRSA512PAIR
//	OP_IF
//	    OP_DUP OP_HASH160 <pubKeyHash> OP_EQUALVERIFY
//	OP_ELSE
//	    <block_height+100> OP_CHECKLOCKTIMEVERIFY OP_VERIFY
//	    OP_DUP OP_HASH160 <buyerPubkeyHash> OP_EQUALVERIFY
//	OP_ENDIF
//	OP_CHECKSIG
//
// The output is spendable either by the gateway — by revealing the
// ephemeral private key eSk matching ePk — or by the buyer after the
// refund height, solving the fair exchange of §4.4.
func KeyRelease(p KeyReleaseParams) Script {
	return NewBuilder().
		AddData(p.RSAPubKey).
		AddOp(OpCheckRSA512Pair).
		AddOp(OpIf).
		AddOp(OpDup).
		AddOp(OpHash160).
		AddData(p.GatewayPubKeyHash[:]).
		AddOp(OpEqualVerify).
		AddOp(OpElse).
		AddInt64(p.RefundHeight).
		AddOp(OpCheckLockTime).
		AddOp(OpVerify).
		AddOp(OpDup).
		AddOp(OpHash160).
		AddData(p.BuyerPubKeyHash[:]).
		AddOp(OpEqualVerify).
		AddOp(OpEndIf).
		AddOp(OpCheckSig).
		Script()
}

// UnlockKeyReleaseClaim builds the gateway's unlocking script for the
// claim path: <sig> <pubKey> <rsaPrivKey>. Publishing this transaction
// reveals eSk on-chain — the disclosure the recipient pays for (Fig. 3
// step 10).
func UnlockKeyReleaseClaim(sig, pubKey, rsaPrivKey []byte) Script {
	return NewBuilder().AddData(sig).AddData(pubKey).AddData(rsaPrivKey).Script()
}

// UnlockKeyReleaseRefund builds the buyer's unlocking script for the
// refund path after the lock time: <sig> <pubKey> <dummy>. The dummy fails
// the pair check, steering evaluation into the OP_ELSE branch.
func UnlockKeyReleaseRefund(sig, pubKey []byte) Script {
	return NewBuilder().AddData(sig).AddData(pubKey).AddOp(OpFalse).Script()
}

// Classify recognizes the locking-script template, if any.
func Classify(s Script) Class {
	instrs, err := Parse(s)
	if err != nil {
		return ClassUnknown
	}
	switch {
	case isP2PKH(instrs):
		return ClassP2PKH
	case len(instrs) == 2 && instrs[0].Op == OpReturn:
		return ClassOpReturn
	case isKeyRelease(instrs):
		return ClassKeyRelease
	case isChannel(instrs):
		return ClassChannel
	default:
		return ClassUnknown
	}
}

func isP2PKH(instrs []Instruction) bool {
	return len(instrs) == 5 &&
		instrs[0].Op == OpDup &&
		instrs[1].Op == OpHash160 &&
		len(instrs[2].Data) == HashLen &&
		instrs[3].Op == OpEqualVerify &&
		instrs[4].Op == OpCheckSig
}

func isKeyRelease(instrs []Instruction) bool {
	if len(instrs) != 17 {
		return false
	}
	ops := []Opcode{
		0, OpCheckRSA512Pair, OpIf, OpDup, OpHash160, 0, OpEqualVerify,
		OpElse, 0, OpCheckLockTime, OpVerify, OpDup, OpHash160, 0,
		OpEqualVerify, OpEndIf, OpCheckSig,
	}
	for i, want := range ops {
		if want == 0 {
			continue // data push slot
		}
		if instrs[i].Op != want {
			return false
		}
	}
	return len(instrs[5].Data) == HashLen && len(instrs[13].Data) == HashLen
}

// ParseKeyRelease extracts the parameters of a Listing 1 script.
func ParseKeyRelease(s Script) (KeyReleaseParams, error) {
	instrs, err := Parse(s)
	if err != nil {
		return KeyReleaseParams{}, err
	}
	if !isKeyRelease(instrs) {
		return KeyReleaseParams{}, ErrNotTemplate
	}
	var p KeyReleaseParams
	p.RSAPubKey = append([]byte(nil), instrs[0].Data...)
	copy(p.GatewayPubKeyHash[:], instrs[5].Data)
	copy(p.BuyerPubKeyHash[:], instrs[13].Data)
	height, err := instructionNum(instrs[8])
	if err != nil {
		return KeyReleaseParams{}, err
	}
	p.RefundHeight = height
	return p, nil
}

// ExtractClaimedRSAKey returns the RSA private key bytes revealed by a
// claim-path unlocking script. This is how the recipient learns eSk once
// the gateway's claim transaction appears in the chain.
func ExtractClaimedRSAKey(unlock Script) ([]byte, error) {
	instrs, err := Parse(unlock)
	if err != nil {
		return nil, err
	}
	if len(instrs) != 3 {
		return nil, ErrNotTemplate
	}
	key := instrs[2].Data
	if len(key) != 8+2*bccrypto.RSA512ModulusLen {
		return nil, ErrNotTemplate
	}
	return append([]byte(nil), key...), nil
}

// ExtractP2PKHHash returns the public key hash of a P2PKH locking script.
func ExtractP2PKHHash(s Script) ([HashLen]byte, error) {
	var out [HashLen]byte
	instrs, err := Parse(s)
	if err != nil {
		return out, err
	}
	if !isP2PKH(instrs) {
		return out, ErrNotTemplate
	}
	copy(out[:], instrs[2].Data)
	return out, nil
}

// instructionNum decodes a number from either a small-int opcode or a data
// push.
func instructionNum(in Instruction) (int64, error) {
	if v, ok := in.Op.smallIntValue(); ok {
		return v, nil
	}
	return decodeNum(in.Data, maxNumLen)
}

// Equal reports whether two scripts are byte-identical.
func Equal(a, b Script) bool { return bytes.Equal(a, b) }
