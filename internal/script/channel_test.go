package script

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"bcwan/internal/bccrypto"
)

func testChannelParams() ChannelParams {
	var funder [HashLen]byte
	for i := range funder {
		funder[i] = byte(i + 1)
	}
	return ChannelParams{
		GatewayPubKey:    bytes.Repeat([]byte{0x02}, 65),
		RecipientPubKey:  bytes.Repeat([]byte{0x03}, 65),
		RefundHeight:     1_000,
		FunderPubKeyHash: funder,
	}
}

func TestChannelClassifyAndParse(t *testing.T) {
	p := testChannelParams()
	lock := Channel(p)
	if got := Classify(lock); got != ClassChannel {
		t.Fatalf("Classify = %v, want ClassChannel", got)
	}
	if got := ClassChannel.String(); got != "channel" {
		t.Fatalf("String = %q", got)
	}
	parsed, err := ParseChannel(lock)
	if err != nil {
		t.Fatalf("ParseChannel: %v", err)
	}
	if !bytes.Equal(parsed.GatewayPubKey, p.GatewayPubKey) ||
		!bytes.Equal(parsed.RecipientPubKey, p.RecipientPubKey) ||
		parsed.RefundHeight != p.RefundHeight ||
		parsed.FunderPubKeyHash != p.FunderPubKeyHash {
		t.Fatalf("ParseChannel round trip mismatch: %+v != %+v", parsed, p)
	}
	if _, err := ParseChannel(PayToPubKeyHash(p.FunderPubKeyHash)); !errors.Is(err, ErrNotTemplate) {
		t.Fatalf("ParseChannel(p2pkh) err = %v, want ErrNotTemplate", err)
	}
}

// TestChannelClosePath verifies the 2-of-2 branch with real EC keys: both
// signatures must check, in the recipient-then-gateway stack order.
func TestChannelClosePath(t *testing.T) {
	gwKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rcKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	digest := bytes.Repeat([]byte{0xab}, 32)
	gwSig, err := gwKey.SignDigest(rand.Reader, digest)
	if err != nil {
		t.Fatal(err)
	}
	rcSig, err := rcKey.SignDigest(rand.Reader, digest)
	if err != nil {
		t.Fatal(err)
	}

	p := testChannelParams()
	p.GatewayPubKey = gwKey.PublicBytes()
	p.RecipientPubKey = rcKey.PublicBytes()
	lock := Channel(p)
	ctx := fakeContext{sigOK: func(sig, pub []byte) bool {
		return bccrypto.VerifyECDigest(pub, digest, sig)
	}}

	mustRun(t, UnlockChannelClose(rcSig, gwSig), lock, ctx)
	// Swapped signatures must fail: the gateway slot verifies first.
	mustFail(t, UnlockChannelClose(gwSig, rcSig), lock, ctx, ErrCheckSigFailed)
	// A single valid signature cannot satisfy the 2-of-2.
	mustFail(t, UnlockChannelClose(rcSig, rcSig), lock, ctx, ErrCheckSigFailed)
}

// TestChannelRefundBoundary pins the CLTV refund boundary for the channel
// template: a spend with lock time exactly at the refund height is
// accepted, one block earlier is rejected.
func TestChannelRefundBoundary(t *testing.T) {
	rcKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	digest := bytes.Repeat([]byte{0xcd}, 32)
	sig, err := rcKey.SignDigest(rand.Reader, digest)
	if err != nil {
		t.Fatal(err)
	}
	p := testChannelParams()
	p.FunderPubKeyHash = rcKey.PubKeyHash()
	lock := Channel(p)
	unlock := UnlockChannelRefund(sig, rcKey.PublicBytes())
	checker := func(sig, pub []byte) bool { return bccrypto.VerifyECDigest(pub, digest, sig) }

	// Exactly at the refund height: accepted.
	mustRun(t, unlock, lock, fakeContext{sigOK: checker, lockTime: p.RefundHeight})
	// Past the refund height: still accepted.
	mustRun(t, unlock, lock, fakeContext{sigOK: checker, lockTime: p.RefundHeight + 1})
	// One block before the refund height: rejected.
	mustFail(t, unlock, lock, fakeContext{sigOK: checker, lockTime: p.RefundHeight - 1}, ErrLockTimeNotReached)
	// Wrong key on the refund path: rejected even after the height.
	other, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	otherSig, err := other.SignDigest(rand.Reader, digest)
	if err != nil {
		t.Fatal(err)
	}
	mustFail(t, UnlockChannelRefund(otherSig, other.PublicBytes()), lock,
		fakeContext{sigOK: checker, lockTime: p.RefundHeight}, ErrEqualVerifyFailed)
}

// TestKeyReleaseRefundBoundary pins the same CLTV boundary for the paper's
// Listing 1 fair-exchange template: refund is accepted at exactly the
// refund height and rejected one block before it.
func TestKeyReleaseRefundBoundary(t *testing.T) {
	var gwHash, buyerHash [HashLen]byte
	for i := range buyerHash {
		buyerHash[i] = byte(i)
	}
	rsa, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(rsa.Public()),
		GatewayPubKeyHash: gwHash,
		RefundHeight:      500,
		BuyerPubKeyHash:   buyerHash,
	}
	lock := KeyRelease(p)
	pub := []byte("buyer-pub")
	buyerHashed := bccrypto.Hash160(pub)
	p.BuyerPubKeyHash = buyerHashed
	lock = KeyRelease(p)
	unlock := UnlockKeyReleaseRefund([]byte("sig"), pub)
	always := func(_, _ []byte) bool { return true }

	mustRun(t, unlock, lock, fakeContext{sigOK: always, lockTime: p.RefundHeight})
	mustRun(t, unlock, lock, fakeContext{sigOK: always, lockTime: p.RefundHeight + 1})
	mustFail(t, unlock, lock, fakeContext{sigOK: always, lockTime: p.RefundHeight - 1}, ErrLockTimeNotReached)
}
