package script

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDirectPush(t *testing.T) {
	s := NewBuilder().AddData([]byte{0xaa, 0xbb}).Script()
	instrs, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrs) != 1 || !bytes.Equal(instrs[0].Data, []byte{0xaa, 0xbb}) {
		t.Fatalf("instrs = %+v", instrs)
	}
}

func TestParsePushData1(t *testing.T) {
	data := make([]byte, 100)
	s := NewBuilder().AddData(data).Script()
	if s[0] != byte(OpPushData1) {
		t.Fatalf("expected OP_PUSHDATA1 prefix, got %#x", s[0])
	}
	instrs, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrs) != 1 || len(instrs[0].Data) != 100 {
		t.Fatalf("instrs = %+v", instrs)
	}
}

func TestParsePushData2(t *testing.T) {
	data := make([]byte, 300)
	s := NewBuilder().AddData(data).Script()
	if s[0] != byte(OpPushData2) {
		t.Fatalf("expected OP_PUSHDATA2 prefix, got %#x", s[0])
	}
	instrs, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrs) != 1 || len(instrs[0].Data) != 300 {
		t.Fatalf("instrs = %+v", instrs)
	}
}

func TestParseTruncatedPushes(t *testing.T) {
	cases := []Script{
		{0x05, 0x01},                    // direct push missing bytes
		{byte(OpPushData1)},             // missing length
		{byte(OpPushData1), 10, 1},      // missing data
		{byte(OpPushData2), 0x01},       // missing half of length
		{byte(OpPushData2), 0x05, 0x00}, // missing data
	}
	for _, s := range cases {
		if _, err := Parse(s); !errors.Is(err, ErrTruncatedPush) {
			t.Errorf("Parse(%x) err = %v, want ErrTruncatedPush", s, err)
		}
	}
}

func TestParseTooLarge(t *testing.T) {
	if _, err := Parse(make(Script, MaxScriptSize+1)); !errors.Is(err, ErrScriptTooLarge) {
		t.Fatalf("err = %v, want ErrScriptTooLarge", err)
	}
}

func TestBuilderSmallIntsUseOpcodes(t *testing.T) {
	for n := int64(0); n <= 16; n++ {
		s := NewBuilder().AddInt64(n).Script()
		if len(s) != 1 {
			t.Errorf("AddInt64(%d) produced %d bytes, want 1", n, len(s))
		}
	}
	s := NewBuilder().AddInt64(-1).Script()
	if len(s) != 1 || Opcode(s[0]) != Op1Negate {
		t.Errorf("AddInt64(-1) = %x, want OP_1NEGATE", s)
	}
}

func TestBuilderDataRoundTripQuick(t *testing.T) {
	// Property: building a push of arbitrary data and executing it
	// leaves exactly that data on the stack (checked via OP_EQUAL with
	// a literal).
	f := func(data []byte) bool {
		if len(data) > 500 {
			data = data[:500]
		}
		lock := NewBuilder().AddData(data).AddData(data).AddOp(OpEqual).Script()
		err := Verify(nil, lock, nil)
		if len(data) == 0 {
			// Empty == empty pushes true... OP_EQUAL(nil, nil) = true.
			return err == nil
		}
		// Data equal to itself must verify unless it is all zeros
		// (whose truthiness is false only for the OP_EQUAL *result*,
		// which is always true here).
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPushOnly(t *testing.T) {
	if !NewBuilder().AddData([]byte("x")).AddInt64(5).AddOp(OpFalse).Script().IsPushOnly() {
		t.Error("push-only script misclassified")
	}
	if NewBuilder().AddData([]byte("x")).AddOp(OpDup).Script().IsPushOnly() {
		t.Error("OP_DUP script classified as push-only")
	}
	if (Script{0x05, 0x01}).IsPushOnly() {
		t.Error("unparseable script classified as push-only")
	}
}

func TestDisassembly(t *testing.T) {
	lock := PayToPubKeyHash([HashLen]byte{0xab})
	str := lock.String()
	for _, want := range []string{"OP_DUP", "OP_HASH160", "OP_EQUALVERIFY", "OP_CHECKSIG", "ab"} {
		if !strings.Contains(str, want) {
			t.Errorf("disassembly %q missing %q", str, want)
		}
	}
	if got := (Script{0x05, 0x01}).String(); !strings.Contains(got, "invalid") {
		t.Errorf("invalid script disassembly = %q", got)
	}
}

func TestOpcodeString(t *testing.T) {
	tests := map[Opcode]string{
		OpDup:             "OP_DUP",
		OpCheckRSA512Pair: "OP_CHECKRSA512PAIR",
		OpCheckLockTime:   "OP_CHECKLOCKTIMEVERIFY",
		OpTrue:            "OP_1",
		Op16:              "OP_16",
		Opcode(0x05):      "OP_PUSHBYTES_5",
		Opcode(0xfe):      "OP_UNKNOWN_0xfe",
	}
	for op, want := range tests {
		if got := op.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", byte(op), got, want)
		}
	}
}
