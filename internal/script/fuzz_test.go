package script

import (
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// Property: evaluating arbitrary byte strings as scripts never panics —
// every failure mode is an error. The engine is consensus code; a panic
// would be a remote crash vector.
func TestVerifyNeverPanicsOnRandomScripts(t *testing.T) {
	f := func(unlock, lock []byte) bool {
		if len(unlock) > 2000 {
			unlock = unlock[:2000]
		}
		if len(lock) > 2000 {
			lock = lock[:2000]
		}
		// Any outcome is fine; reaching the return means no panic.
		_ = Verify(unlock, lock, nil)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: mrand.New(mrand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: every opcode byte, executed alone on random small stacks,
// errors or succeeds without panicking.
func TestSingleOpcodeRobustness(t *testing.T) {
	for op := 0; op < 256; op++ {
		for depth := 0; depth <= 3; depth++ {
			b := NewBuilder()
			for i := 0; i < depth; i++ {
				b.AddData([]byte{byte(i + 1)})
			}
			lock := append(b.Script(), byte(op))
			_ = Verify(nil, lock, nil) // must not panic
		}
	}
}

// Property: parse → rebuild through the Builder yields a script with the
// same instruction sequence.
func TestParseBuilderRoundTrip(t *testing.T) {
	f := func(words [][]byte) bool {
		b := NewBuilder()
		for _, w := range words {
			if len(w) > 500 {
				w = w[:500]
			}
			b.AddData(w)
		}
		s := b.Script()
		instrs, err := Parse(s)
		if err != nil {
			return false
		}
		rebuilt := NewBuilder()
		for _, in := range instrs {
			if v, ok := in.Op.smallIntValue(); ok {
				rebuilt.AddInt64(v)
				continue
			}
			rebuilt.AddData(in.Data)
		}
		return string(rebuilt.Script()) == string(s)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: mrand.New(mrand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
