package script

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"bcwan/internal/bccrypto"
)

// Execution errors. Engine.Execute wraps these with positional context;
// match with errors.Is.
var (
	ErrStackUnderflow     = errors.New("script: stack underflow")
	ErrStackOverflow      = errors.New("script: stack size limit exceeded")
	ErrTooManyOps         = errors.New("script: operation limit exceeded")
	ErrUnbalancedIf       = errors.New("script: unbalanced conditional")
	ErrEarlyReturn        = errors.New("script: OP_RETURN executed")
	ErrVerifyFailed       = errors.New("script: OP_VERIFY failed")
	ErrEqualVerifyFailed  = errors.New("script: OP_EQUALVERIFY failed")
	ErrCheckSigFailed     = errors.New("script: signature check failed")
	ErrLockTimeNotReached = errors.New("script: lock time not reached")
	ErrDisabledOpcode     = errors.New("script: disabled or unknown opcode")
	ErrScriptFalse        = errors.New("script: evaluated to false")
	ErrUnlockNotPushOnly  = errors.New("script: unlocking script is not push-only")
)

// Limits mirroring Bitcoin consensus rules.
const (
	maxStackSize   = 1000
	maxOpsPerEval  = 201
	maxElementSize = 520
)

// Context supplies the transaction-dependent inputs a script evaluation
// needs. The chain package implements it against a spending transaction.
type Context interface {
	// CheckSig verifies sig over the spending transaction's signature
	// hash with the given serialized public key.
	CheckSig(sig, pubKey []byte) bool
	// LockTime returns the spending transaction's lock time, expressed
	// as a block height (BIP-65 semantics).
	LockTime() int64
}

// staticContext is used for evaluations with no transaction context; any
// signature or locktime check fails.
type staticContext struct{}

func (staticContext) CheckSig(_, _ []byte) bool { return false }
func (staticContext) LockTime() int64           { return 0 }

// Verify runs the unlocking script then the locking script on a shared
// stack, per the UTXO model: the spend succeeds iff the final stack top is
// truthy. The unlocking script must be push-only.
func Verify(unlock, lock Script, ctx Context) error {
	if !unlock.IsPushOnly() {
		return ErrUnlockNotPushOnly
	}
	if ctx == nil {
		ctx = staticContext{}
	}
	e := &engine{ctx: ctx}
	if err := e.run(unlock); err != nil {
		return fmt.Errorf("unlocking script: %w", err)
	}
	if err := e.run(lock); err != nil {
		return fmt.Errorf("locking script: %w", err)
	}
	if len(e.stack) == 0 || !isTruthy(e.stack[len(e.stack)-1]) {
		return ErrScriptFalse
	}
	return nil
}

// engine holds evaluation state shared between the unlocking and locking
// scripts.
type engine struct {
	ctx   Context
	stack [][]byte
	ops   int
}

func (e *engine) push(v []byte) error {
	if len(v) > maxElementSize {
		return fmt.Errorf("script: element of %d bytes exceeds limit %d", len(v), maxElementSize)
	}
	if len(e.stack) >= maxStackSize {
		return ErrStackOverflow
	}
	e.stack = append(e.stack, v)
	return nil
}

func (e *engine) pop() ([]byte, error) {
	if len(e.stack) == 0 {
		return nil, ErrStackUnderflow
	}
	v := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	return v, nil
}

func (e *engine) peek() ([]byte, error) {
	if len(e.stack) == 0 {
		return nil, ErrStackUnderflow
	}
	return e.stack[len(e.stack)-1], nil
}

func (e *engine) pushBool(v bool) error {
	if v {
		return e.push([]byte{1})
	}
	return e.push(nil)
}

func (e *engine) popNum() (int64, error) {
	v, err := e.pop()
	if err != nil {
		return 0, err
	}
	return decodeNum(v, maxNumLen)
}

// condState tracks one nesting level of OP_IF.
type condState int

const (
	condTrue    condState = iota // executing this branch
	condFalse                    // skipping until OP_ELSE/OP_ENDIF
	condSkipAll                  // entire conditional inside a skipped branch
)

func (e *engine) run(s Script) error {
	instrs, err := Parse(s)
	if err != nil {
		return err
	}
	var conds []condState
	executing := func() bool {
		for _, c := range conds {
			if c != condTrue {
				return false
			}
		}
		return true
	}

	for idx, in := range instrs {
		op := in.Op
		if !op.IsPush() {
			e.ops++
			if e.ops > maxOpsPerEval {
				return ErrTooManyOps
			}
		}

		// Conditional bookkeeping happens even on skipped branches.
		switch op {
		case OpIf, OpNotIf:
			if !executing() {
				conds = append(conds, condSkipAll)
				continue
			}
			top, err := e.pop()
			if err != nil {
				return fmt.Errorf("op %d %s: %w", idx, op, err)
			}
			taken := isTruthy(top)
			if op == OpNotIf {
				taken = !taken
			}
			if taken {
				conds = append(conds, condTrue)
			} else {
				conds = append(conds, condFalse)
			}
			continue
		case OpElse:
			if len(conds) == 0 {
				return ErrUnbalancedIf
			}
			switch conds[len(conds)-1] {
			case condTrue:
				conds[len(conds)-1] = condFalse
			case condFalse:
				conds[len(conds)-1] = condTrue
			case condSkipAll:
				// unchanged
			}
			continue
		case OpEndIf:
			if len(conds) == 0 {
				return ErrUnbalancedIf
			}
			conds = conds[:len(conds)-1]
			continue
		}

		if !executing() {
			continue
		}
		if err := e.step(in); err != nil {
			return fmt.Errorf("op %d %s: %w", idx, op, err)
		}
	}
	if len(conds) != 0 {
		return ErrUnbalancedIf
	}
	return nil
}

// step executes a single non-conditional instruction.
func (e *engine) step(in Instruction) error {
	op := in.Op

	// Data pushes.
	if in.Data != nil || (op >= 0x01 && op <= maxDirectPush) {
		return e.push(append([]byte(nil), in.Data...))
	}
	if v, ok := op.smallIntValue(); ok {
		return e.push(encodeNum(v))
	}

	switch op {
	case OpNop:
		return nil

	case OpReturn:
		return ErrEarlyReturn

	case OpVerify:
		top, err := e.pop()
		if err != nil {
			return err
		}
		if !isTruthy(top) {
			return ErrVerifyFailed
		}
		return nil

	case OpDrop:
		_, err := e.pop()
		return err

	case OpDup:
		top, err := e.peek()
		if err != nil {
			return err
		}
		return e.push(append([]byte(nil), top...))

	case OpNip:
		top, err := e.pop()
		if err != nil {
			return err
		}
		if _, err := e.pop(); err != nil {
			return err
		}
		return e.push(top)

	case OpOver:
		if len(e.stack) < 2 {
			return ErrStackUnderflow
		}
		return e.push(append([]byte(nil), e.stack[len(e.stack)-2]...))

	case OpSwap:
		a, err := e.pop()
		if err != nil {
			return err
		}
		b, err := e.pop()
		if err != nil {
			return err
		}
		if err := e.push(a); err != nil {
			return err
		}
		return e.push(b)

	case OpSize:
		top, err := e.peek()
		if err != nil {
			return err
		}
		return e.push(encodeNum(int64(len(top))))

	case OpDepth:
		return e.push(encodeNum(int64(len(e.stack))))

	case OpEqual, OpEqualVerify:
		a, err := e.pop()
		if err != nil {
			return err
		}
		b, err := e.pop()
		if err != nil {
			return err
		}
		eq := bytes.Equal(a, b)
		if op == OpEqualVerify {
			if !eq {
				return ErrEqualVerifyFailed
			}
			return nil
		}
		return e.pushBool(eq)

	case OpNot:
		n, err := e.popNum()
		if err != nil {
			return err
		}
		return e.pushBool(n == 0)

	case OpBoolAnd, OpBoolOr:
		b, err := e.popNum()
		if err != nil {
			return err
		}
		a, err := e.popNum()
		if err != nil {
			return err
		}
		if op == OpBoolAnd {
			return e.pushBool(a != 0 && b != 0)
		}
		return e.pushBool(a != 0 || b != 0)

	case OpAdd, OpSub, OpLessThan, OpGreaterThan,
		OpLessThanOrEqual, OpGreaterThanOrEqual, OpMin, OpMax:
		b, err := e.popNum()
		if err != nil {
			return err
		}
		a, err := e.popNum()
		if err != nil {
			return err
		}
		switch op {
		case OpAdd:
			return e.push(encodeNum(a + b))
		case OpSub:
			return e.push(encodeNum(a - b))
		case OpLessThan:
			return e.pushBool(a < b)
		case OpGreaterThan:
			return e.pushBool(a > b)
		case OpLessThanOrEqual:
			return e.pushBool(a <= b)
		case OpGreaterThanOrEqual:
			return e.pushBool(a >= b)
		case OpMin:
			return e.push(encodeNum(min64(a, b)))
		default:
			return e.push(encodeNum(max64(a, b)))
		}

	case OpSHA256:
		top, err := e.pop()
		if err != nil {
			return err
		}
		sum := sha256.Sum256(top)
		return e.push(sum[:])

	case OpHash160:
		top, err := e.pop()
		if err != nil {
			return err
		}
		sum := bccrypto.Hash160(top)
		return e.push(sum[:])

	case OpHash256:
		top, err := e.pop()
		if err != nil {
			return err
		}
		sum := bccrypto.DoubleSHA256(top)
		return e.push(sum[:])

	case OpCheckSig, OpCheckSigVerify:
		pubKey, err := e.pop()
		if err != nil {
			return err
		}
		sig, err := e.pop()
		if err != nil {
			return err
		}
		ok := e.ctx.CheckSig(sig, pubKey)
		if op == OpCheckSigVerify {
			if !ok {
				return ErrCheckSigFailed
			}
			return nil
		}
		return e.pushBool(ok)

	case OpCheckLockTime:
		// BIP-65: peek the required height; fail if the spending
		// transaction's lock time has not reached it. The stack item is
		// left in place (Listing 1 follows with OP_VERIFY to drop it).
		top, err := e.peek()
		if err != nil {
			return err
		}
		required, err := decodeNum(top, maxNumLen)
		if err != nil {
			return err
		}
		if required < 0 {
			return ErrLockTimeNotReached
		}
		if e.ctx.LockTime() < required {
			return ErrLockTimeNotReached
		}
		return nil

	case OpCheckRSA512Pair:
		// Pops the RSA public key (pushed by the locking script) and
		// the candidate private key (from the unlocking script); pushes
		// whether they form a valid pair. Non-key or dummy values push
		// false rather than aborting, so Listing 1's OP_ELSE refund
		// branch stays reachable.
		pubBytes, err := e.pop()
		if err != nil {
			return err
		}
		privBytes, err := e.pop()
		if err != nil {
			return err
		}
		pub, errPub := bccrypto.UnmarshalRSA512PublicKey(pubBytes)
		priv, errPriv := bccrypto.UnmarshalRSA512PrivateKey(privBytes)
		ok := errPub == nil && errPriv == nil && priv.MatchesPublic(pub)
		return e.pushBool(ok)
	}

	return fmt.Errorf("%w: %s", ErrDisabledOpcode, op)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
