// Package registry implements BcWAN's gateway addressing (§4.3): the
// blockchain doubles as a DNS-like directory. Each recipient ready to
// receive messages publishes a transaction binding its blockchain address
// (@R, the hash of its public key) to its current IP address inside an
// OP_RETURN output; gateways scan blocks and resolve @R to an IP before
// opening the TCP connection of Fig. 3 step 7.
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// bindingMagic tags BcWAN directory records among arbitrary OP_RETURN
// data.
var bindingMagic = []byte("BCWAN1")

// maxNetAddrLen bounds the encoded network address.
const maxNetAddrLen = 128

// ErrBadBinding reports an undecodable directory record.
var ErrBadBinding = errors.New("registry: malformed binding record")

// ErrNotFound reports a lookup miss.
var ErrNotFound = errors.New("registry: address not found")

// Binding maps a blockchain address to a network address.
type Binding struct {
	// PubKeyHash is the recipient's @R.
	PubKeyHash [20]byte
	// NetAddr is the "host:port" the recipient listens on.
	NetAddr string
	// Height is the block that carried the (latest) record.
	Height int64
}

// EncodeBinding serializes a record for an OP_RETURN output.
func EncodeBinding(pubKeyHash [20]byte, netAddr string) ([]byte, error) {
	if len(netAddr) == 0 || len(netAddr) > maxNetAddrLen {
		return nil, fmt.Errorf("%w: address length %d", ErrBadBinding, len(netAddr))
	}
	out := make([]byte, 0, len(bindingMagic)+20+1+len(netAddr))
	out = append(out, bindingMagic...)
	out = append(out, pubKeyHash[:]...)
	out = append(out, byte(len(netAddr)))
	out = append(out, netAddr...)
	return out, nil
}

// DecodeBinding parses a record.
func DecodeBinding(data []byte) (Binding, error) {
	var b Binding
	if len(data) < len(bindingMagic)+20+1 {
		return b, fmt.Errorf("%w: %d bytes", ErrBadBinding, len(data))
	}
	if !bytes.HasPrefix(data, bindingMagic) {
		return b, fmt.Errorf("%w: bad magic", ErrBadBinding)
	}
	rest := data[len(bindingMagic):]
	copy(b.PubKeyHash[:], rest[:20])
	n := int(rest[20])
	addr := rest[21:]
	if len(addr) != n || n == 0 {
		return b, fmt.Errorf("%w: address length mismatch", ErrBadBinding)
	}
	b.NetAddr = string(addr)
	return b, nil
}

// Directory is the scanned view of all on-chain bindings. The latest
// binding (highest block) wins, supporting the paper's roaming scenario
// where "the IP address can change if the recipient gateway is moved to
// another network".
type Directory struct {
	mu     sync.RWMutex
	byHash map[[20]byte]Binding
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{byHash: make(map[[20]byte]Binding)}
}

// Attach subscribes the directory to a chain and scans all existing
// best-branch blocks ("On start-up, each node retrieves the recent blocks
// from other nodes and scans their content for foreign gateways IPs",
// §5.1).
func (d *Directory) Attach(c *chain.Chain) {
	c.Subscribe(d.ScanBlock)
	for h := int64(0); h <= c.Height(); h++ {
		if b, ok := c.BlockAt(h); ok {
			d.ScanBlock(b)
		}
	}
}

// ScanBlock indexes every binding record in the block.
func (d *Directory) ScanBlock(b *chain.Block) {
	for _, tx := range b.Txs {
		for _, out := range tx.Outputs {
			payload, err := script.ExtractNullData(out.Lock)
			if err != nil {
				continue
			}
			binding, err := DecodeBinding(payload)
			if err != nil {
				continue
			}
			binding.Height = b.Header.Height
			d.mu.Lock()
			prev, exists := d.byHash[binding.PubKeyHash]
			if !exists || binding.Height >= prev.Height {
				d.byHash[binding.PubKeyHash] = binding
			}
			d.mu.Unlock()
		}
	}
}

// Lookup resolves a blockchain address to its latest network address.
func (d *Directory) Lookup(pubKeyHash [20]byte) (Binding, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b, ok := d.byHash[pubKeyHash]
	if !ok {
		return Binding{}, ErrNotFound
	}
	return b, nil
}

// Len reports the number of known bindings.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byHash)
}

// BuildPublish builds the transaction announcing the wallet's own binding.
func BuildPublish(w *wallet.Wallet, utxo *chain.UTXOSet, netAddr string, fee uint64) (*chain.Tx, error) {
	payload, err := EncodeBinding(w.PubKeyHash(), netAddr)
	if err != nil {
		return nil, err
	}
	tx, err := w.BuildDataPublish(utxo, payload, fee)
	if err != nil {
		return nil, fmt.Errorf("registry publish: %w", err)
	}
	return tx, nil
}
