// Package registry implements BcWAN's gateway addressing (§4.3): the
// blockchain doubles as a DNS-like directory. Each recipient ready to
// receive messages publishes a transaction binding its blockchain address
// (@R, the hash of its public key) to its current IP address inside an
// OP_RETURN output; gateways scan blocks and resolve @R to an IP before
// opening the TCP connection of Fig. 3 step 7.
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// bindingMagic tags BcWAN directory records among arbitrary OP_RETURN
// data.
var bindingMagic = []byte("BCWAN1")

// maxNetAddrLen bounds the encoded network address.
const maxNetAddrLen = 128

// ErrBadBinding reports an undecodable directory record.
var ErrBadBinding = errors.New("registry: malformed binding record")

// ErrNotFound reports a lookup miss.
var ErrNotFound = errors.New("registry: address not found")

// ErrUntrusted reports that the address is bound but belongs to an
// ejected (below-trust-threshold) gateway, so the binding is ignored.
var ErrUntrusted = errors.New("registry: address ejected")

// Binding maps a blockchain address to a network address.
type Binding struct {
	// PubKeyHash is the recipient's @R.
	PubKeyHash [20]byte
	// NetAddr is the "host:port" the recipient listens on.
	NetAddr string
	// Height is the block that carried the (latest) record.
	Height int64
}

// EncodeBinding serializes a record for an OP_RETURN output.
func EncodeBinding(pubKeyHash [20]byte, netAddr string) ([]byte, error) {
	if len(netAddr) == 0 || len(netAddr) > maxNetAddrLen {
		return nil, fmt.Errorf("%w: address length %d", ErrBadBinding, len(netAddr))
	}
	out := make([]byte, 0, len(bindingMagic)+20+1+len(netAddr))
	out = append(out, bindingMagic...)
	out = append(out, pubKeyHash[:]...)
	out = append(out, byte(len(netAddr)))
	out = append(out, netAddr...)
	return out, nil
}

// DecodeBinding parses a record.
func DecodeBinding(data []byte) (Binding, error) {
	var b Binding
	if len(data) < len(bindingMagic)+20+1 {
		return b, fmt.Errorf("%w: %d bytes", ErrBadBinding, len(data))
	}
	if !bytes.HasPrefix(data, bindingMagic) {
		return b, fmt.Errorf("%w: bad magic", ErrBadBinding)
	}
	rest := data[len(bindingMagic):]
	copy(b.PubKeyHash[:], rest[:20])
	n := int(rest[20])
	addr := rest[21:]
	if len(addr) != n || n == 0 || n > maxNetAddrLen {
		return b, fmt.Errorf("%w: address length mismatch", ErrBadBinding)
	}
	b.NetAddr = string(addr)
	return b, nil
}

// Directory is the scanned view of all on-chain bindings. The latest
// binding (highest block) wins, supporting the paper's roaming scenario
// where "the IP address can change if the recipient gateway is moved to
// another network".
//
// Bindings are authenticated: a record for @R is only indexed when the
// carrying transaction proves control of @R — one of its inputs must push
// the public key hashing to @R in its unlock script (true for every
// wallet-signed publish, since P2PKH unlocks push <sig> <pubkey>). Without
// this check any funded adversary could hijack a victim's @R and divert
// its deliveries.
type Directory struct {
	mu      sync.RWMutex
	byHash  map[[20]byte]Binding
	ejected map[[20]byte]bool
	chain   *chain.Chain
	scanTip int64
	forged  uint64
	rescans uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		byHash:  make(map[[20]byte]Binding),
		ejected: make(map[[20]byte]bool),
		scanTip: -1,
	}
}

// Attach subscribes the directory to a chain and scans all existing
// best-branch blocks ("On start-up, each node retrieves the recent blocks
// from other nodes and scans their content for foreign gateways IPs",
// §5.1). Attaching also arms reorg detection: when the chain switches to
// a better branch, the directory rescans the new best branch so bindings
// that only existed on the abandoned branch disappear.
func (d *Directory) Attach(c *chain.Chain) {
	d.mu.Lock()
	d.chain = c
	d.mu.Unlock()
	c.Subscribe(d.ScanBlock)
	for h := int64(0); h <= c.Height(); h++ {
		if b, ok := c.BlockAt(h); ok {
			d.ScanBlock(b)
		}
	}
}

// ScanBlock indexes every authenticated binding record in the block. A
// block at or below the highest height already scanned means the chain
// reorganized under us (connect notifications are strictly ascending on
// one branch); the directory then rebuilds from the current best branch.
func (d *Directory) ScanBlock(b *chain.Block) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.chain != nil && b.Header.Height <= d.scanTip {
		d.rescanLocked()
		return
	}
	d.scanBlockLocked(b)
	if b.Header.Height > d.scanTip {
		d.scanTip = b.Header.Height
	}
}

func (d *Directory) scanBlockLocked(b *chain.Block) {
	for _, tx := range b.Txs {
		for _, out := range tx.Outputs {
			payload, err := script.ExtractNullData(out.Lock)
			if err != nil {
				continue
			}
			binding, err := DecodeBinding(payload)
			if err != nil {
				continue
			}
			if !txAuthenticates(tx, binding.PubKeyHash) {
				d.forged++
				continue
			}
			binding.Height = b.Header.Height
			prev, exists := d.byHash[binding.PubKeyHash]
			if !exists || binding.Height >= prev.Height {
				d.byHash[binding.PubKeyHash] = binding
			}
		}
	}
}

// rescanLocked rebuilds the directory from the attached chain's current
// best branch. Bindings whose blocks were pruned away are lost — pruned
// nodes should re-publish after deep reorgs, as the paper's roaming flow
// already requires.
func (d *Directory) rescanLocked() {
	d.byHash = make(map[[20]byte]Binding)
	tip := d.chain.Height()
	for h := int64(0); h <= tip; h++ {
		if b, ok := d.chain.BlockAt(h); ok {
			d.scanBlockLocked(b)
		}
	}
	d.scanTip = tip
	d.rescans++
}

// txAuthenticates reports whether any input of tx pushes a public key
// whose Hash160 equals hash — proof that the publisher controls @R.
func txAuthenticates(tx *chain.Tx, hash [20]byte) bool {
	for _, in := range tx.Inputs {
		ins, err := script.Parse(in.Unlock)
		if err != nil {
			continue
		}
		for _, instr := range ins {
			if len(instr.Data) == 0 {
				continue
			}
			if bccrypto.Hash160(instr.Data) == hash {
				return true
			}
		}
	}
	return false
}

// Lookup resolves a blockchain address to its latest network address.
// Ejected addresses resolve to ErrUntrusted until reinstated.
func (d *Directory) Lookup(pubKeyHash [20]byte) (Binding, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.ejected[pubKeyHash] {
		return Binding{}, ErrUntrusted
	}
	b, ok := d.byHash[pubKeyHash]
	if !ok {
		return Binding{}, ErrNotFound
	}
	return b, nil
}

// Eject marks an address as untrusted (reputation below threshold): its
// current and future bindings are ignored until Reinstate.
func (d *Directory) Eject(pubKeyHash [20]byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ejected[pubKeyHash] = true
}

// Reinstate lifts an ejection.
func (d *Directory) Reinstate(pubKeyHash [20]byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.ejected, pubKeyHash)
}

// Len reports the number of known, non-ejected bindings.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for h := range d.byHash {
		if !d.ejected[h] {
			n++
		}
	}
	return n
}

// ForgedRejected reports how many binding records were dropped because
// the carrying transaction could not prove control of the bound address.
func (d *Directory) ForgedRejected() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.forged
}

// Rescans reports how many reorg-induced full rescans have run.
func (d *Directory) Rescans() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rescans
}

// BuildPublish builds the transaction announcing the wallet's own binding.
func BuildPublish(w *wallet.Wallet, utxo *chain.UTXOSet, netAddr string, fee uint64) (*chain.Tx, error) {
	payload, err := EncodeBinding(w.PubKeyHash(), netAddr)
	if err != nil {
		return nil, err
	}
	tx, err := w.BuildDataPublish(utxo, payload, fee)
	if err != nil {
		return nil, fmt.Errorf("registry publish: %w", err)
	}
	return tx, nil
}
