package registry

import (
	"crypto/rand"
	"errors"
	"strings"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

func TestBindingEncodeDecode(t *testing.T) {
	var hash [20]byte
	copy(hash[:], "recipient-pubkeyhash")
	data, err := EncodeBinding(hash, "192.0.2.17:7000")
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBinding(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.PubKeyHash != hash || b.NetAddr != "192.0.2.17:7000" {
		t.Fatalf("binding = %+v", b)
	}
}

func TestEncodeBindingRejects(t *testing.T) {
	var hash [20]byte
	if _, err := EncodeBinding(hash, ""); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("empty addr err = %v", err)
	}
	if _, err := EncodeBinding(hash, strings.Repeat("a", 200)); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("long addr err = %v", err)
	}
}

func TestDecodeBindingRejects(t *testing.T) {
	var hash [20]byte
	good, err := EncodeBinding(hash, "10.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":        {1, 2, 3},
		"bad magic":    append([]byte("XXXXXX"), good[6:]...),
		"truncated":    good[:len(good)-2],
		"extra":        append(append([]byte(nil), good...), 'x'),
		"zero address": good[:27],
	}
	for name, data := range cases {
		if _, err := DecodeBinding(data); !errors.Is(err, ErrBadBinding) {
			t.Errorf("%s: err = %v, want ErrBadBinding", name, err)
		}
	}
}

type regFixture struct {
	chain   *chain.Chain
	mempool *chain.Mempool
	miner   *chain.Miner
	w       *wallet.Wallet
}

func newRegFixture(t *testing.T) *regFixture {
	t.Helper()
	w, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{w.PubKeyHash(): 100_000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	return &regFixture{
		chain:   c,
		mempool: pool,
		miner:   chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		w:       w,
	}
}

func (f *regFixture) publish(t *testing.T, addr string) {
	t.Helper()
	tx, err := BuildPublish(f.w, f.chain.UTXO(), addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mempool.Accept(tx, f.chain.UTXO(), f.chain.Height(), f.chain.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryScansSubscribedBlocks(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000")

	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "192.0.2.5:7000" {
		t.Fatalf("resolved %q", b.NetAddr)
	}
	if b.Height != 1 {
		t.Fatalf("height = %d, want 1", b.Height)
	}
}

func TestDirectoryAttachScansHistory(t *testing.T) {
	f := newRegFixture(t)
	f.publish(t, "192.0.2.5:7000")

	// Attach after the record is already on-chain (the start-up scan).
	dir := NewDirectory()
	dir.Attach(f.chain)
	if _, err := dir.Lookup(f.w.PubKeyHash()); err != nil {
		t.Fatalf("start-up scan missed the binding: %v", err)
	}
}

func TestDirectoryLatestBindingWins(t *testing.T) {
	// The roaming case: the recipient moves and republishes.
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000")
	f.publish(t, "198.51.100.9:8000")

	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "198.51.100.9:8000" {
		t.Fatalf("resolved %q, want the newer binding", b.NetAddr)
	}
	if dir.Len() != 1 {
		t.Fatalf("directory size = %d, want 1", dir.Len())
	}
}

func TestDirectoryLookupMiss(t *testing.T) {
	dir := NewDirectory()
	if _, err := dir.Lookup([20]byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDirectoryIgnoresForeignOpReturns(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	tx, err := f.w.BuildDataPublish(f.chain.UTXO(), []byte("unrelated data"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mempool.Accept(tx, f.chain.UTXO(), f.chain.Height(), f.chain.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	if dir.Len() != 0 {
		t.Fatalf("directory indexed foreign data: %d entries", dir.Len())
	}
}
