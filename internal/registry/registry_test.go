package registry

import (
	"bytes"
	"crypto/rand"
	"errors"
	"strings"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

func TestBindingEncodeDecode(t *testing.T) {
	var hash [20]byte
	copy(hash[:], "recipient-pubkeyhash")
	data, err := EncodeBinding(hash, "192.0.2.17:7000")
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBinding(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.PubKeyHash != hash || b.NetAddr != "192.0.2.17:7000" {
		t.Fatalf("binding = %+v", b)
	}
}

func TestEncodeBindingRejects(t *testing.T) {
	var hash [20]byte
	if _, err := EncodeBinding(hash, ""); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("empty addr err = %v", err)
	}
	if _, err := EncodeBinding(hash, strings.Repeat("a", 200)); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("long addr err = %v", err)
	}
}

func TestDecodeBindingRejects(t *testing.T) {
	var hash [20]byte
	good, err := EncodeBinding(hash, "10.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":        {1, 2, 3},
		"bad magic":    append([]byte("XXXXXX"), good[6:]...),
		"truncated":    good[:len(good)-2],
		"extra":        append(append([]byte(nil), good...), 'x'),
		"zero address": good[:27],
	}
	for name, data := range cases {
		if _, err := DecodeBinding(data); !errors.Is(err, ErrBadBinding) {
			t.Errorf("%s: err = %v, want ErrBadBinding", name, err)
		}
	}
}

type regFixture struct {
	chain   *chain.Chain
	mempool *chain.Mempool
	miner   *chain.Miner
	w       *wallet.Wallet
	minerW  *wallet.Wallet
	genesis *chain.Block
	alloc   map[[20]byte]uint64
}

func newRegFixture(t *testing.T, extra ...*wallet.Wallet) *regFixture {
	t.Helper()
	w, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	alloc := map[[20]byte]uint64{w.PubKeyHash(): 100_000}
	for _, ew := range extra {
		alloc[ew.PubKeyHash()] = 100_000
	}
	genesis := chain.GenesisBlock(alloc)
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	return &regFixture{
		chain:   c,
		mempool: pool,
		miner:   chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		w:       w,
		minerW:  minerW,
		genesis: genesis,
		alloc:   alloc,
	}
}

func (f *regFixture) submit(t *testing.T, tx *chain.Tx) {
	t.Helper()
	if err := f.mempool.Accept(tx, f.chain.UTXO(), f.chain.Height(), f.chain.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
}

func (f *regFixture) publish(t *testing.T, addr string) {
	t.Helper()
	tx, err := BuildPublish(f.w, f.chain.UTXO(), addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mempool.Accept(tx, f.chain.UTXO(), f.chain.Height(), f.chain.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryScansSubscribedBlocks(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000")

	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "192.0.2.5:7000" {
		t.Fatalf("resolved %q", b.NetAddr)
	}
	if b.Height != 1 {
		t.Fatalf("height = %d, want 1", b.Height)
	}
}

func TestDirectoryAttachScansHistory(t *testing.T) {
	f := newRegFixture(t)
	f.publish(t, "192.0.2.5:7000")

	// Attach after the record is already on-chain (the start-up scan).
	dir := NewDirectory()
	dir.Attach(f.chain)
	if _, err := dir.Lookup(f.w.PubKeyHash()); err != nil {
		t.Fatalf("start-up scan missed the binding: %v", err)
	}
}

func TestDirectoryLatestBindingWins(t *testing.T) {
	// The roaming case: the recipient moves and republishes.
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000")
	f.publish(t, "198.51.100.9:8000")

	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "198.51.100.9:8000" {
		t.Fatalf("resolved %q, want the newer binding", b.NetAddr)
	}
	if dir.Len() != 1 {
		t.Fatalf("directory size = %d, want 1", dir.Len())
	}
}

func TestDirectoryLookupMiss(t *testing.T) {
	dir := NewDirectory()
	if _, err := dir.Lookup([20]byte{1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDirectoryRebindsSamePubKeyHashAcrossBlocks(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	addrs := []string{"192.0.2.5:7000", "198.51.100.9:8000", "203.0.113.2:9000"}
	for _, a := range addrs {
		f.publish(t, a)
	}
	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != addrs[len(addrs)-1] {
		t.Fatalf("resolved %q, want last rebinding", b.NetAddr)
	}
	if b.Height != int64(len(addrs)) {
		t.Fatalf("height = %d, want %d", b.Height, len(addrs))
	}
	if dir.Len() != 1 {
		t.Fatalf("Len = %d after %d rebinds, want 1", dir.Len(), len(addrs))
	}
}

func TestDirectoryRejectsForgedBinding(t *testing.T) {
	attacker, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := newRegFixture(t, attacker)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000") // the victim's own, authenticated binding

	// The attacker binds the victim's @R to its own address. The carrying
	// tx is valid on-chain (it spends the attacker's coins) but no input
	// proves control of the victim's key, so the record must be dropped.
	payload, err := EncodeBinding(f.w.PubKeyHash(), "203.0.113.66:9999")
	if err != nil {
		t.Fatal(err)
	}
	forged, err := attacker.BuildDataPublish(f.chain.UTXO(), payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.submit(t, forged)

	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "192.0.2.5:7000" {
		t.Fatalf("hijacked: resolved %q", b.NetAddr)
	}
	if dir.ForgedRejected() == 0 {
		t.Fatal("forged binding not counted as rejected")
	}
	if dir.Len() != 1 {
		t.Fatalf("Len = %d, want 1", dir.Len())
	}
}

func TestDirectoryReorgRescan(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000") // binding on branch A at height 1

	// Build a longer competing branch from the same genesis carrying a
	// different binding, then feed it to the observed chain.
	side, err := chain.New(chain.DefaultParams(), f.genesis)
	if err != nil {
		t.Fatal(err)
	}
	side.AuthorizeMiner(f.minerW.PublicBytes())
	sidePool := chain.NewMempool()
	sideMiner := chain.NewMiner(f.minerW.Key(), side, sidePool, rand.Reader)
	tx, err := BuildPublish(f.w, side.UTXO(), "198.51.100.9:8000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sidePool.Accept(tx, side.UTXO(), side.Height(), side.Params()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sideMiner.Mine(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	for h := int64(1); h <= side.Height(); h++ {
		b, ok := side.BlockAt(h)
		if !ok {
			t.Fatalf("side branch missing block %d", h)
		}
		if err := f.chain.AddBlock(b); err != nil {
			t.Fatalf("add side block %d: %v", h, err)
		}
	}
	if f.chain.Height() != 2 {
		t.Fatalf("height = %d, want reorg to 2", f.chain.Height())
	}

	b, err := dir.Lookup(f.w.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "198.51.100.9:8000" {
		t.Fatalf("resolved %q, want side-branch binding after rescan", b.NetAddr)
	}
	if dir.Rescans() == 0 {
		t.Fatal("reorg did not trigger a rescan")
	}
	if dir.Len() != 1 {
		t.Fatalf("Len = %d, want 1", dir.Len())
	}
}

func TestDirectoryEjectedLookup(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	f.publish(t, "192.0.2.5:7000")
	hash := f.w.PubKeyHash()
	dir.Eject(hash)
	if _, err := dir.Lookup(hash); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("ejected lookup err = %v, want ErrUntrusted", err)
	}
	if dir.Len() != 0 {
		t.Fatalf("Len = %d with sole binding ejected, want 0", dir.Len())
	}

	// Rebinding while ejected must not resurrect the address.
	f.publish(t, "198.51.100.9:8000")
	if _, err := dir.Lookup(hash); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("post-rebind ejected lookup err = %v, want ErrUntrusted", err)
	}

	dir.Reinstate(hash)
	b, err := dir.Lookup(hash)
	if err != nil {
		t.Fatal(err)
	}
	if b.NetAddr != "198.51.100.9:8000" || dir.Len() != 1 {
		t.Fatalf("reinstated = %+v, Len = %d", b, dir.Len())
	}
}

func FuzzDecodeBinding(f *testing.F) {
	var hash [20]byte
	copy(hash[:], "recipient-pubkeyhash")
	good, err := EncodeBinding(hash, "192.0.2.17:7000")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	// Hostile-field seeds, not just random bytes: length byte lies long,
	// lies short, zero; truncated hash; oversized address; magic off by
	// one byte; trailing garbage.
	lieLong := append([]byte(nil), good...)
	lieLong[26] = 255
	f.Add(lieLong)
	lieShort := append([]byte(nil), good...)
	lieShort[26] = 1
	f.Add(lieShort)
	zeroLen := append([]byte(nil), good...)
	zeroLen[26] = 0
	f.Add(zeroLen)
	f.Add(good[:20])
	f.Add(append(append([]byte(nil), good...), "trailing"...))
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0x20
	f.Add(badMagic)
	f.Add(append(append([]byte(nil), bindingMagic...), make([]byte, 21+200)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBinding(data)
		if err != nil {
			return
		}
		if len(b.NetAddr) == 0 || len(b.NetAddr) > maxNetAddrLen {
			t.Fatalf("accepted out-of-bounds address length %d", len(b.NetAddr))
		}
		// Round-trip: re-encoding an accepted binding must reproduce the
		// input and decode to the same value.
		enc, err := EncodeBinding(b.PubKeyHash, b.NetAddr)
		if err != nil {
			t.Fatalf("accepted binding does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, enc)
		}
		b2, err := DecodeBinding(enc)
		if err != nil || b2 != b {
			t.Fatalf("re-decode mismatch: %+v vs %+v (%v)", b, b2, err)
		}
	})
}

func TestDirectoryIgnoresForeignOpReturns(t *testing.T) {
	f := newRegFixture(t)
	dir := NewDirectory()
	dir.Attach(f.chain)

	tx, err := f.w.BuildDataPublish(f.chain.UTXO(), []byte("unrelated data"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mempool.Accept(tx, f.chain.UTXO(), f.chain.Height(), f.chain.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	if dir.Len() != 0 {
		t.Fatalf("directory indexed foreign data: %d entries", dir.Len())
	}
}
