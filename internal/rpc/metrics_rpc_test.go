package rpc

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bcwan/internal/lora"
	"bcwan/internal/simtime"
	"bcwan/internal/telemetry"
)

// TestMetricsEndpoint checks GET /metrics serves Prometheus text with
// series from chain, mempool and rpc, and rejects other verbs.
func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t)
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	// One RPC call so rpc counters are non-zero.
	if _, err := f.client.GetBlockCount(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + f.server.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"bcwan_chain_blocks_connected_total 1",
		"bcwan_chain_utxo_size",
		"bcwan_chain_block_connect_seconds_bucket",
		"bcwan_mempool_size",
		"bcwan_mempool_accept_seconds_count",
		`bcwan_rpc_requests_total{method="getblockcount"} 1`,
		"bcwan_rpc_inflight_requests",
		"bcwan_rpc_request_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Non-GET verbs are rejected.
	postResp, err := http.Post("http://"+f.server.Addr()+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", postResp.StatusCode)
	}

	// Pre-dispatch protocol errors count in the per-code error series.
	badResp, err := http.Post("http://"+f.server.Addr()+"/", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	resp2, err := http.Get("http://" + f.server.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := `bcwan_rpc_errors_total{code="-32700"} 1`; !strings.Contains(string(body2), want) {
		t.Errorf("/metrics missing %q after parse error", want)
	}
}

// TestGetMetricsAgreesWithPrometheus asserts the getmetrics JSON-RPC
// snapshot and GET /metrics expose the same values: the JSON snapshot,
// re-rendered through the Prometheus writer, must match the served text
// exactly for every non-rpc family (rpc's own counters move between the
// two requests).
func TestGetMetricsAgreesWithPrometheus(t *testing.T) {
	f := newFixture(t)
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	// A known-value series to anchor the comparison.
	f.reg.Counter("bcwan_test_known_total", "Test anchor.").Add(42)

	resp, err := http.Get("http://" + f.server.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	var snap []telemetry.Metric
	if err := f.client.Call(context.Background(), "getmetrics", &snap); err != nil {
		t.Fatal(err)
	}

	anchored := false
	for _, m := range snap {
		if m.Name == "bcwan_test_known_total" {
			anchored = true
			if m.Value != 42 {
				t.Fatalf("anchor counter = %v, want 42", m.Value)
			}
		}
	}
	if !anchored {
		t.Fatal("anchor counter missing from getmetrics snapshot")
	}

	stable := func(name string) bool { return !strings.HasPrefix(name, "bcwan_rpc_") }
	var fromJSON []telemetry.Metric
	for _, m := range snap {
		if stable(m.Name) {
			fromJSON = append(fromJSON, m)
		}
	}
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, fromJSON); err != nil {
		t.Fatal(err)
	}
	var servedStable strings.Builder
	skip := false
	for _, line := range strings.SplitAfter(string(served), "\n") {
		if line == "" {
			continue
		}
		name := line
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			name = line[7:]
		}
		if i := strings.IndexAny(name, " {"); i > 0 {
			skip = !stable(name[:i])
		}
		if !skip {
			servedStable.WriteString(line)
		}
	}
	if servedStable.String() != buf.String() {
		t.Fatalf("expositions disagree:\n--- /metrics (stable series) ---\n%s\n--- getmetrics re-rendered ---\n%s",
			servedStable.String(), buf.String())
	}
}

// TestGetMetricsSeesSimulationGauges wires the discrete-event engine's
// instrumentation — clock, radio medium, duty cycle — into a node registry
// and asserts the gauges surface through the getmetrics RPC.
func TestGetMetricsSeesSimulationGauges(t *testing.T) {
	f := newFixture(t)
	origin := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

	clk := simtime.NewSim(origin)
	clk.Instrument(f.reg)
	clk.NewTimer(time.Minute)

	sched := simtime.NewScheduler(origin)
	ch := lora.NewChannel(sched, lora.DefaultPathLoss(), lora.DefaultPHY())
	ch.Instrument(f.reg)
	gw := ch.NewRadio("gw", lora.Position{})
	gw.OnReceive(func(lora.RxFrame) {})
	dev := ch.NewRadio("dev", lora.Position{X: 500})
	if _, err := dev.Transmit([]byte{1}, lora.SF7, lora.DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}

	dc, err := lora.NewDutyCycle(0.01)
	if err != nil {
		t.Fatal(err)
	}
	dc.Instrument(f.reg.Namespace("lora").Gauge(
		"dutycycle_used_fraction", "In-window airtime over budget, in ppm."))
	dc.Record(sched.Now(), 18*time.Second) // half the 36 s budget

	var snap []telemetry.Metric
	if err := f.client.Call(context.Background(), "getmetrics", &snap); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, m := range snap {
		got[m.Name] = m.Value
	}
	for name, want := range map[string]float64{
		"bcwan_sim_pending_timers":           1,
		"bcwan_lora_active_transmissions":    1,
		"bcwan_lora_grid_cells":              1,
		"bcwan_lora_dutycycle_used_fraction": 500_000,
	} {
		v, ok := got[name]
		if !ok {
			t.Errorf("getmetrics missing %s", name)
			continue
		}
		if v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}
