package rpc

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bcwan/internal/chain"
)

// Client talks to a Server (or any Multichain-compatible subset).
type Client struct {
	url    string
	http   *http.Client
	nextID atomic.Int64
}

// NewClient creates a client for the daemon at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		url:  "http://" + addr + "/",
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Call performs one JSON-RPC round trip, decoding the result into out
// (pass nil to discard).
func (c *Client) Call(method string, out any, params ...any) error {
	rawParams := make([]json.RawMessage, len(params))
	for i, p := range params {
		raw, err := json.Marshal(p)
		if err != nil {
			return fmt.Errorf("rpc marshal param %d: %w", i, err)
		}
		rawParams[i] = raw
	}
	req := Request{Method: method, Params: rawParams, ID: c.nextID.Add(1)}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("rpc marshal: %w", err)
	}
	httpResp, err := c.http.Post(c.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpc post: %w", err)
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("rpc decode: %w", err)
	}
	if resp.Error != nil {
		return resp.Error
	}
	if out != nil {
		if err := json.Unmarshal(resp.Result, out); err != nil {
			return fmt.Errorf("rpc decode result: %w", err)
		}
	}
	return nil
}

// GetBlockCount returns the chain height.
func (c *Client) GetBlockCount() (int64, error) {
	var h int64
	err := c.Call("getblockcount", &h)
	return h, err
}

// GetBlock returns the block at a height.
func (c *Client) GetBlock(height int64) (*chain.Block, error) {
	var summary BlockSummary
	if err := c.Call("getblock", &summary, height); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(summary.RawHex)
	if err != nil {
		return nil, fmt.Errorf("rpc block hex: %w", err)
	}
	return chain.DeserializeBlock(raw)
}

// SendRawTransaction submits a transaction, returning its txid.
func (c *Client) SendRawTransaction(tx *chain.Tx) (chain.Hash, error) {
	var txid string
	if err := c.Call("sendrawtransaction", &txid, hex.EncodeToString(tx.Serialize())); err != nil {
		return chain.Hash{}, err
	}
	return chain.HashFromString(txid)
}

// GetRawTransaction fetches a transaction by ID.
func (c *Client) GetRawTransaction(id chain.Hash) (*chain.Tx, error) {
	var txHex string
	if err := c.Call("getrawtransaction", &txHex, id.String()); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(txHex)
	if err != nil {
		return nil, fmt.Errorf("rpc tx hex: %w", err)
	}
	return chain.DeserializeTx(raw)
}

// GetConfirmations returns the confirmation count of a transaction.
func (c *Client) GetConfirmations(id chain.Hash) (int64, error) {
	var n int64
	err := c.Call("getconfirmations", &n, id.String())
	return n, err
}

// ListUnspent returns the P2PKH outputs paying a pubkey hash.
func (c *Client) ListUnspent(hash [20]byte) ([]UnspentOutput, error) {
	var out []UnspentOutput
	err := c.Call("listunspent", &out, hex.EncodeToString(hash[:]))
	return out, err
}

// GetBalance sums the P2PKH outputs paying a pubkey hash.
func (c *Client) GetBalance(hash [20]byte) (uint64, error) {
	var v uint64
	err := c.Call("getbalance", &v, hex.EncodeToString(hash[:]))
	return v, err
}
