package rpc

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bcwan/internal/chain"
)

// Client talks JSON-RPC 2.0 to a Server (or any Multichain-compatible
// subset). Every call is context-aware; when the supplied context has no
// deadline, the client applies its per-call timeout.
type Client struct {
	url     string
	http    *http.Client
	timeout time.Duration
	nextID  atomic.Int64
}

// DefaultCallTimeout bounds a call when the caller's context carries no
// deadline of its own.
const DefaultCallTimeout = 30 * time.Second

// NewClient creates a client for the daemon at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		url:     "http://" + addr + "/",
		http:    &http.Client{},
		timeout: DefaultCallTimeout,
	}
}

// SetTimeout changes the per-call timeout applied when a context has no
// deadline. Zero disables the client-side bound.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// callContext applies the per-call timeout unless the caller already
// set a deadline.
func (c *Client) callContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := ctx.Deadline(); !ok && c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// marshalParams encodes positional parameters.
func marshalParams(params []any) ([]json.RawMessage, error) {
	raw := make([]json.RawMessage, len(params))
	for i, p := range params {
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("rpc marshal param %d: %w", i, err)
		}
		raw[i] = b
	}
	return raw, nil
}

// post sends one JSON body and returns the raw response body.
func (c *Client) post(ctx context.Context, body []byte) ([]byte, error) {
	ctx, cancel := c.callContext(ctx)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("rpc request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("rpc post: %w", err)
	}
	defer httpResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(httpResp.Body); err != nil {
		return nil, fmt.Errorf("rpc read: %w", err)
	}
	return buf.Bytes(), nil
}

// Call performs one JSON-RPC 2.0 round trip, decoding the result into
// out (pass nil to discard).
func (c *Client) Call(ctx context.Context, method string, out any, params ...any) error {
	rawParams, err := marshalParams(params)
	if err != nil {
		return err
	}
	id, err := json.Marshal(c.nextID.Add(1))
	if err != nil {
		return fmt.Errorf("rpc marshal id: %w", err)
	}
	body, err := json.Marshal(Request{JSONRPC: "2.0", Method: method, Params: rawParams, ID: id})
	if err != nil {
		return fmt.Errorf("rpc marshal: %w", err)
	}
	respBody, err := c.post(ctx, body)
	if err != nil {
		return err
	}
	var resp Response
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return fmt.Errorf("rpc decode: %w", err)
	}
	if resp.Error != nil {
		return resp.Error
	}
	if out != nil {
		if err := json.Unmarshal(resp.Result, out); err != nil {
			return fmt.Errorf("rpc decode result: %w", err)
		}
	}
	return nil
}

// BatchCall is one entry of a CallBatch round trip. Out (optional)
// receives the decoded result; Err reports the call's individual
// outcome after CallBatch returns.
type BatchCall struct {
	Method string
	Params []any
	Out    any
	Err    error
}

// CallBatch performs many calls in a single HTTP round trip using a
// JSON-RPC 2.0 batch request — the idiom a gateway uses to poll
// confirmations for many pending claims at once. Transport-level
// failures are returned; per-call failures land in each entry's Err.
func (c *Client) CallBatch(ctx context.Context, calls []BatchCall) error {
	if len(calls) == 0 {
		return nil
	}
	reqs := make([]Request, len(calls))
	byID := make(map[string]int, len(calls))
	for i := range calls {
		rawParams, err := marshalParams(calls[i].Params)
		if err != nil {
			return err
		}
		id, err := json.Marshal(c.nextID.Add(1))
		if err != nil {
			return fmt.Errorf("rpc marshal id: %w", err)
		}
		reqs[i] = Request{JSONRPC: "2.0", Method: calls[i].Method, Params: rawParams, ID: id}
		byID[string(id)] = i
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return fmt.Errorf("rpc marshal batch: %w", err)
	}
	respBody, err := c.post(ctx, body)
	if err != nil {
		return err
	}
	trimmed := bytes.TrimLeft(respBody, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		// The server rejected the batch wholesale (parse error, over
		// limit): one error object instead of an array.
		var single Response
		if err := json.Unmarshal(trimmed, &single); err != nil {
			return fmt.Errorf("rpc decode: %w", err)
		}
		if single.Error != nil {
			return single.Error
		}
		return fmt.Errorf("rpc: single response to batch request")
	}
	var resps []Response
	if err := json.Unmarshal(respBody, &resps); err != nil {
		return fmt.Errorf("rpc decode batch: %w", err)
	}
	seen := make([]bool, len(calls))
	for i := range resps {
		idx, ok := byID[string(bytes.TrimSpace(resps[i].ID))]
		if !ok {
			continue
		}
		seen[idx] = true
		call := &calls[idx]
		if resps[i].Error != nil {
			call.Err = resps[i].Error
			continue
		}
		if call.Out != nil {
			if err := json.Unmarshal(resps[i].Result, call.Out); err != nil {
				call.Err = fmt.Errorf("rpc decode result: %w", err)
			}
		}
	}
	for i := range calls {
		if !seen[i] && calls[i].Err == nil {
			calls[i].Err = fmt.Errorf("rpc: no response for batch call %d (%s)", i, calls[i].Method)
		}
	}
	return nil
}

// Notify sends a JSON-RPC 2.0 notification: the method executes on the
// server but no response is returned or awaited beyond the HTTP round
// trip.
func (c *Client) Notify(ctx context.Context, method string, params ...any) error {
	rawParams, err := marshalParams(params)
	if err != nil {
		return err
	}
	body, err := json.Marshal(Request{JSONRPC: "2.0", Method: method, Params: rawParams})
	if err != nil {
		return fmt.Errorf("rpc marshal: %w", err)
	}
	_, err = c.post(ctx, body)
	return err
}

// GetBlockCount returns the chain height.
func (c *Client) GetBlockCount(ctx context.Context) (int64, error) {
	var h int64
	err := c.Call(ctx, "getblockcount", &h)
	return h, err
}

// GetBlock returns the block at a height.
func (c *Client) GetBlock(ctx context.Context, height int64) (*chain.Block, error) {
	var summary BlockSummary
	if err := c.Call(ctx, "getblock", &summary, height); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(summary.RawHex)
	if err != nil {
		return nil, fmt.Errorf("rpc block hex: %w", err)
	}
	return chain.DeserializeBlock(raw)
}

// GetBlockHeader returns the header summary for a block reference —
// a height (int64) or a hash string.
func (c *Client) GetBlockHeader(ctx context.Context, ref any) (HeaderSummary, error) {
	var summary HeaderSummary
	err := c.Call(ctx, "getblockheader", &summary, ref)
	return summary, err
}

// GetChainTips returns every tip the node tracks, highest first.
func (c *Client) GetChainTips(ctx context.Context) ([]TipSummary, error) {
	var tips []TipSummary
	err := c.Call(ctx, "getchaintips", &tips)
	return tips, err
}

// GetRawBlock fetches a block's canonical serialization (getblock
// verbosity 0); pruned heights fail server-side.
func (c *Client) GetRawBlock(ctx context.Context, ref any) (*chain.Block, error) {
	var blockHex string
	if err := c.Call(ctx, "getblock", &blockHex, ref, 0); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(blockHex)
	if err != nil {
		return nil, fmt.Errorf("rpc block hex: %w", err)
	}
	return chain.DeserializeBlock(raw)
}

// SendRawTransaction submits a transaction, returning its txid.
func (c *Client) SendRawTransaction(ctx context.Context, tx *chain.Tx) (chain.Hash, error) {
	var txid string
	if err := c.Call(ctx, "sendrawtransaction", &txid, hex.EncodeToString(tx.Serialize())); err != nil {
		return chain.Hash{}, err
	}
	return chain.HashFromString(txid)
}

// GetRawTransaction fetches a transaction by ID.
func (c *Client) GetRawTransaction(ctx context.Context, id chain.Hash) (*chain.Tx, error) {
	var txHex string
	if err := c.Call(ctx, "getrawtransaction", &txHex, id.String()); err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(txHex)
	if err != nil {
		return nil, fmt.Errorf("rpc tx hex: %w", err)
	}
	return chain.DeserializeTx(raw)
}

// GetConfirmations returns the confirmation count of a transaction.
func (c *Client) GetConfirmations(ctx context.Context, id chain.Hash) (int64, error) {
	var n int64
	err := c.Call(ctx, "getconfirmations", &n, id.String())
	return n, err
}

// GetConfirmationsBatch fetches confirmation counts for many
// transactions in one round trip. The result slice is index-aligned
// with ids; a per-transaction failure fails the whole lookup.
func (c *Client) GetConfirmationsBatch(ctx context.Context, ids []chain.Hash) ([]int64, error) {
	confs := make([]int64, len(ids))
	calls := make([]BatchCall, len(ids))
	for i, id := range ids {
		calls[i] = BatchCall{Method: "getconfirmations", Params: []any{id.String()}, Out: &confs[i]}
	}
	if err := c.CallBatch(ctx, calls); err != nil {
		return nil, err
	}
	for i := range calls {
		if calls[i].Err != nil {
			return nil, fmt.Errorf("tx %s: %w", ids[i], calls[i].Err)
		}
	}
	return confs, nil
}

// ListUnspent returns the P2PKH outputs paying a pubkey hash.
func (c *Client) ListUnspent(ctx context.Context, hash [20]byte) ([]UnspentOutput, error) {
	var out []UnspentOutput
	err := c.Call(ctx, "listunspent", &out, EncodePubKeyHash(hash))
	return out, err
}

// GetBalance sums the P2PKH outputs paying a pubkey hash.
func (c *Client) GetBalance(ctx context.Context, hash [20]byte) (uint64, error) {
	var v uint64
	err := c.Call(ctx, "getbalance", &v, EncodePubKeyHash(hash))
	return v, err
}
