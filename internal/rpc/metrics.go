package rpc

import (
	"strconv"

	"bcwan/internal/telemetry"
)

// rpcMetrics instruments the JSON-RPC server. Per-method and per-code
// series are pre-registered so every method in the dispatch table and
// every standard error code exists at zero from startup.
type rpcMetrics struct {
	ns             *telemetry.Namespace
	requestSeconds *telemetry.Histogram
	inflight       *telemetry.Gauge
}

func newRPCMetrics(reg *telemetry.Registry) *rpcMetrics {
	ns := reg.Namespace("rpc")
	m := &rpcMetrics{
		ns:             ns,
		requestSeconds: ns.Histogram("request_seconds", "HTTP request handling latency in seconds.", nil),
		inflight:       ns.Gauge("inflight_requests", "HTTP requests currently being handled."),
	}
	for name := range methods {
		m.methodCounter(name)
	}
	for _, code := range []int{CodeParseError, CodeInvalidRequest, CodeMethodNotFound, CodeInvalidParams, CodeServerError} {
		m.errorCounter(code)
	}
	return m
}

// methodCounter returns the per-method request counter. Unknown method
// names collapse into one "unknown" series so remote callers cannot
// inflate label cardinality.
func (m *rpcMetrics) methodCounter(method string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	if _, known := methods[method]; !known {
		method = "unknown"
	}
	return m.ns.Counter("requests_total", "JSON-RPC calls dispatched, by method.", telemetry.L("method", method))
}

// errorCounter returns the per-code error counter.
func (m *rpcMetrics) errorCounter(code int) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("errors_total", "JSON-RPC error responses, by code.", telemetry.L("code", strconv.Itoa(code)))
}
