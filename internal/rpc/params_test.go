package rpc

import (
	"strings"
	"testing"
)

func TestDecodePubKeyHash(t *testing.T) {
	valid := strings.Repeat("ab", 20)
	tests := []struct {
		name    string
		in      string
		wantErr bool
		want    byte // first byte of the decoded hash when wantErr is false
	}{
		{name: "valid", in: valid, want: 0xab},
		{name: "uppercase hex", in: strings.ToUpper(valid), want: 0xab},
		{name: "zero hash", in: strings.Repeat("00", 20), want: 0x00},
		{name: "empty", in: "", wantErr: true},
		{name: "not hex", in: strings.Repeat("zz", 20), wantErr: true},
		{name: "odd length", in: valid[:39], wantErr: true},
		{name: "too short", in: strings.Repeat("ab", 19), wantErr: true},
		{name: "too long", in: strings.Repeat("ab", 21), wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			hash, err := DecodePubKeyHash(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("DecodePubKeyHash(%q) accepted", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("DecodePubKeyHash(%q): %v", tc.in, err)
			}
			for _, b := range hash {
				if b != tc.want {
					t.Fatalf("hash = %x, want all %02x", hash, tc.want)
				}
			}
			if EncodePubKeyHash(hash) != strings.ToLower(tc.in) {
				t.Fatalf("round trip = %s, want %s", EncodePubKeyHash(hash), strings.ToLower(tc.in))
			}
		})
	}
}
