// Package rpc exposes the blockchain node over JSON-RPC, mirroring the
// Multichain daemon surface the paper's Go daemon wraps (§5.1): creating,
// signing and sending raw transactions, publishing OP_RETURN data, and
// querying blocks and unspent outputs.
package rpc

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"bcwan/internal/chain"
)

// Request is a JSON-RPC request.
type Request struct {
	Method string            `json:"method"`
	Params []json.RawMessage `json:"params"`
	ID     int64             `json:"id"`
}

// Response is a JSON-RPC response.
type Response struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
	ID     int64           `json:"id"`
}

// Error is a JSON-RPC error object.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

// JSON-RPC error codes.
const (
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeServerError    = -32000
)

// Backend is the node state the server exposes.
type Backend struct {
	Chain   *chain.Chain
	Mempool *chain.Mempool
	// OnTxAccepted, when set, is invoked after a sendrawtransaction is
	// admitted to the mempool (the daemon gossips it to peers).
	OnTxAccepted func(*chain.Tx)
}

// Server is an HTTP JSON-RPC server.
type Server struct {
	backend  Backend
	server   *http.Server
	listener net.Listener

	mu     sync.Mutex
	closed bool
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string, backend Backend) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc listen: %w", err)
	}
	s := &Server{backend: backend, listener: l}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	s.server = &http.Server{Handler: mux}
	go s.server.Serve(l) //nolint:errcheck // Serve returns on Close.
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.server.Close()
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	resp := s.dispatch(&req)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Connection-level failure; nothing else to do.
		return
	}
}

func (s *Server) dispatch(req *Request) *Response {
	result, err := s.call(req)
	resp := &Response{ID: req.ID}
	if err != nil {
		var rpcErr *Error
		if errors.As(err, &rpcErr) {
			resp.Error = rpcErr
		} else {
			resp.Error = &Error{Code: CodeServerError, Message: err.Error()}
		}
		return resp
	}
	raw, merr := json.Marshal(result)
	if merr != nil {
		resp.Error = &Error{Code: CodeServerError, Message: merr.Error()}
		return resp
	}
	resp.Result = raw
	return resp
}

// UnspentOutput is the listunspent result row.
type UnspentOutput struct {
	TxID      string `json:"txid"`
	Vout      uint32 `json:"vout"`
	Value     uint64 `json:"value"`
	LockHex   string `json:"lockhex"`
	Height    int64  `json:"height"`
	Coinbase  bool   `json:"coinbase"`
	Spendable bool   `json:"spendable"`
}

// BlockSummary is the getblock result.
type BlockSummary struct {
	Hash     string   `json:"hash"`
	Height   int64    `json:"height"`
	Time     int64    `json:"time"`
	TxIDs    []string `json:"tx"`
	RawHex   string   `json:"rawhex"`
	PrevHash string   `json:"previousblockhash"`
}

func (s *Server) call(req *Request) (any, error) {
	switch req.Method {
	case "getblockcount":
		return s.backend.Chain.Height(), nil

	case "getbestblockhash":
		return s.backend.Chain.Tip().ID().String(), nil

	case "getblock":
		var height int64
		if err := oneParam(req, &height); err != nil {
			return nil, err
		}
		b, ok := s.backend.Chain.BlockAt(height)
		if !ok {
			return nil, &Error{Code: CodeInvalidParams, Message: "block not found"}
		}
		return blockSummary(b), nil

	case "getrawtransaction":
		var txid string
		if err := oneParam(req, &txid); err != nil {
			return nil, err
		}
		id, err := chain.HashFromString(txid)
		if err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		if tx, ok := s.backend.Mempool.Get(id); ok {
			return hex.EncodeToString(tx.Serialize()), nil
		}
		tx, _, ok := s.backend.Chain.FindTx(id)
		if !ok {
			return nil, &Error{Code: CodeInvalidParams, Message: "transaction not found"}
		}
		return hex.EncodeToString(tx.Serialize()), nil

	case "getconfirmations":
		var txid string
		if err := oneParam(req, &txid); err != nil {
			return nil, err
		}
		id, err := chain.HashFromString(txid)
		if err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		return s.backend.Chain.Confirmations(id), nil

	case "sendrawtransaction":
		var txHex string
		if err := oneParam(req, &txHex); err != nil {
			return nil, err
		}
		raw, err := hex.DecodeString(txHex)
		if err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: "bad hex"}
		}
		tx, err := chain.DeserializeTx(raw)
		if err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		c := s.backend.Chain
		if err := s.backend.Mempool.Accept(tx, c.UTXO(), c.Height(), c.Params()); err != nil {
			return nil, &Error{Code: CodeServerError, Message: err.Error()}
		}
		if s.backend.OnTxAccepted != nil {
			s.backend.OnTxAccepted(tx)
		}
		return tx.ID().String(), nil

	case "listunspent":
		var hashHex string
		if err := oneParam(req, &hashHex); err != nil {
			return nil, err
		}
		var hash [20]byte
		raw, err := hex.DecodeString(hashHex)
		if err != nil || len(raw) != 20 {
			return nil, &Error{Code: CodeInvalidParams, Message: "pubkey hash must be 20 hex bytes"}
		}
		copy(hash[:], raw)
		utxo := s.backend.Chain.UTXO()
		var out []UnspentOutput
		for _, op := range utxo.FindByPubKeyHash(hash) {
			entry, _ := utxo.Get(op)
			out = append(out, UnspentOutput{
				TxID:      op.TxID.String(),
				Vout:      op.Index,
				Value:     entry.Out.Value,
				LockHex:   hex.EncodeToString(entry.Out.Lock),
				Height:    entry.Height,
				Coinbase:  entry.Coinbase,
				Spendable: true,
			})
		}
		return out, nil

	case "getbalance":
		var hashHex string
		if err := oneParam(req, &hashHex); err != nil {
			return nil, err
		}
		var hash [20]byte
		raw, err := hex.DecodeString(hashHex)
		if err != nil || len(raw) != 20 {
			return nil, &Error{Code: CodeInvalidParams, Message: "pubkey hash must be 20 hex bytes"}
		}
		copy(hash[:], raw)
		return s.backend.Chain.UTXO().BalanceOf(hash), nil

	default:
		return nil, &Error{Code: CodeMethodNotFound, Message: req.Method}
	}
}

func blockSummary(b *chain.Block) BlockSummary {
	ids := make([]string, len(b.Txs))
	for i, tx := range b.Txs {
		ids[i] = tx.ID().String()
	}
	return BlockSummary{
		Hash:     b.ID().String(),
		Height:   b.Header.Height,
		Time:     b.Header.Time,
		TxIDs:    ids,
		RawHex:   hex.EncodeToString(b.Serialize()),
		PrevHash: b.Header.PrevBlock.String(),
	}
}

func oneParam(req *Request, out any) error {
	if len(req.Params) != 1 {
		return &Error{Code: CodeInvalidParams, Message: "expected 1 parameter"}
	}
	if err := json.Unmarshal(req.Params[0], out); err != nil {
		return &Error{Code: CodeInvalidParams, Message: err.Error()}
	}
	return nil
}
