// Package rpc exposes the blockchain node over JSON-RPC 2.0, mirroring
// the Multichain daemon surface the paper's Go daemon wraps (§5.1):
// creating, signing and sending raw transactions, publishing OP_RETURN
// data, and querying blocks and unspent outputs.
//
// The server speaks the JSON-RPC 2.0 wire format: requests carry
// `"jsonrpc": "2.0"`, requests without an id (or with a null id) are
// notifications and receive no response, and an array of requests is a
// batch answered by an array of responses — a gateway polls
// confirmations for many claims in one round trip. Legacy 1.0-style
// requests (no jsonrpc member, integer ids) are still accepted.
package rpc

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/telemetry"
)

// Request is a JSON-RPC 2.0 request. A nil or null ID marks a
// notification: the server executes it but sends no response.
type Request struct {
	JSONRPC string            `json:"jsonrpc,omitempty"`
	Method  string            `json:"method"`
	Params  []json.RawMessage `json:"params,omitempty"`
	ID      json.RawMessage   `json:"id,omitempty"`
}

// IsNotification reports whether the request carries no id.
func (r *Request) IsNotification() bool {
	return len(r.ID) == 0 || bytes.Equal(bytes.TrimSpace(r.ID), []byte("null"))
}

// Response is a JSON-RPC 2.0 response.
type Response struct {
	JSONRPC string          `json:"jsonrpc"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
	ID      json.RawMessage `json:"id"`
}

// Error is a JSON-RPC error object.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

// Standard JSON-RPC 2.0 error codes.
const (
	CodeParseError     = -32700
	CodeInvalidRequest = -32600
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeServerError    = -32000
)

// Request-size guards.
const (
	// maxRequestBytes caps an HTTP request body; a full MaxBlockTxs
	// block of maximum-size transactions still fits.
	maxRequestBytes = 8 << 20
	// maxBatchRequests caps the number of calls in one batch.
	maxBatchRequests = 1000
)

// Backend is the node state the server exposes.
type Backend struct {
	Chain   *chain.Chain
	Mempool *chain.Mempool
	// OnTxAccepted, when set, is invoked after a sendrawtransaction is
	// admitted to the mempool (the daemon gossips it to peers).
	OnTxAccepted func(*chain.Tx)
	// Telemetry, when set, is served at GET /metrics (Prometheus text)
	// and by the getmetrics method, and the server records its own
	// request metrics in it.
	Telemetry *telemetry.Registry
	// SyncInfo, when set, backs the getsyncinfo method (the daemon wires
	// its sync state machine's progress surface here).
	SyncInfo func() any
	// Channels, when set, resolves the payment-channel subsystem behind
	// the openchannel / getchannelinfo / closechannel / listchannels
	// methods. Late-bound like SyncInfo: the daemon enables channels
	// after the RPC server starts, so the backend holds a getter, not
	// the ops value itself. A nil getter or a nil result means the
	// subsystem is disabled.
	Channels func() ChannelOps
}

// ChannelOps is the payment-channel surface a daemon exposes over RPC.
// Results are JSON-marshalable summaries owned by the implementation.
type ChannelOps interface {
	// OpenChannel funds a channel to a gateway's p2p overlay address
	// (0 capacity = the daemon's configured default).
	OpenChannel(peer string, capacity uint64) (any, error)
	// ChannelInfo returns the state of one channel endpoint by id.
	ChannelInfo(id string) (any, error)
	// CloseChannel settles a channel on-chain.
	CloseChannel(id string) (any, error)
	// ListChannels returns every known channel endpoint.
	ListChannels() (any, error)
}

// handlerFunc executes one RPC method against the node backend.
type handlerFunc func(s *Server, params []json.RawMessage) (any, error)

// methods is the dispatch table. Adding a method is one entry here plus
// a handler below — no switch to grow. Populated in init to let
// listmethods enumerate the table without an initialization cycle.
var methods map[string]handlerFunc

func init() {
	methods = map[string]handlerFunc{
		"getblockcount":      handleGetBlockCount,
		"getbestblockhash":   handleGetBestBlockHash,
		"getblock":           handleGetBlock,
		"getblockheader":     handleGetBlockHeader,
		"getchaintips":       handleGetChainTips,
		"getsyncinfo":        handleGetSyncInfo,
		"getrawtransaction":  handleGetRawTransaction,
		"getconfirmations":   handleGetConfirmations,
		"sendrawtransaction": handleSendRawTransaction,
		"listunspent":        handleListUnspent,
		"getbalance":         handleGetBalance,
		"listmethods":        handleListMethods,
		"getmetrics":         handleGetMetrics,
		"openchannel":        handleOpenChannel,
		"getchannelinfo":     handleGetChannelInfo,
		"closechannel":       handleCloseChannel,
		"listchannels":       handleListChannels,
	}
}

// Server is an HTTP JSON-RPC 2.0 server.
type Server struct {
	backend  Backend
	server   *http.Server
	listener net.Listener
	metrics  *rpcMetrics // nil when Backend.Telemetry is nil

	mu     sync.Mutex
	closed bool
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string, backend Backend) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc listen: %w", err)
	}
	s := &Server{backend: backend, listener: l}
	if backend.Telemetry != nil {
		s.metrics = newRPCMetrics(backend.Telemetry)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.server = &http.Server{Handler: mux}
	go s.server.Serve(l) //nolint:errcheck // Serve returns on Close.
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.server.Close()
}

// handle reads one HTTP request carrying either a single JSON-RPC call
// or a batch (JSON array), and writes the matching response shape.
// Malformed bodies produce a proper JSON-RPC error object with a null
// id, never a bare HTTP error.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	if m := s.metrics; m != nil {
		start := time.Now()
		m.inflight.Inc()
		defer func() {
			m.inflight.Dec()
			m.requestSeconds.ObserveSince(start)
		}()
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, s.protocolError(nil, &Error{Code: CodeParseError, Message: "request body unreadable or over size limit"}))
		return
	}
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		s.handleBatch(w, trimmed)
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, s.protocolError(nil, &Error{Code: CodeParseError, Message: err.Error()}))
		return
	}
	resp := s.dispatch(&req)
	if req.IsNotification() {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, resp)
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format at GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg := s.backend.Telemetry
	if reg == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Write errors mean a dead connection; nothing else to do.
	_ = telemetry.WritePrometheus(w, reg.Snapshot())
}

// handleBatch answers an array of requests with an array of responses,
// preserving order and omitting entries for notifications.
func (s *Server) handleBatch(w http.ResponseWriter, body []byte) {
	var raws []json.RawMessage
	if err := json.Unmarshal(body, &raws); err != nil {
		writeJSON(w, s.protocolError(nil, &Error{Code: CodeParseError, Message: err.Error()}))
		return
	}
	if len(raws) == 0 {
		writeJSON(w, s.protocolError(nil, &Error{Code: CodeInvalidRequest, Message: "empty batch"}))
		return
	}
	if len(raws) > maxBatchRequests {
		writeJSON(w, s.protocolError(nil, &Error{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("batch of %d exceeds limit %d", len(raws), maxBatchRequests)}))
		return
	}
	responses := make([]*Response, 0, len(raws))
	for _, raw := range raws {
		var req Request
		if err := json.Unmarshal(raw, &req); err != nil {
			responses = append(responses, s.protocolError(nil, &Error{Code: CodeInvalidRequest, Message: err.Error()}))
			continue
		}
		resp := s.dispatch(&req)
		if !req.IsNotification() {
			responses = append(responses, resp)
		}
	}
	if len(responses) == 0 {
		// A batch of nothing but notifications gets no response body.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, responses)
}

// dispatch routes one request through the method registry.
func (s *Server) dispatch(req *Request) *Response {
	s.metrics.methodCounter(req.Method).Inc()
	resp := s.dispatchInner(req)
	if resp.Error != nil {
		s.metrics.errorCounter(resp.Error.Code).Inc()
	}
	return resp
}

func (s *Server) dispatchInner(req *Request) *Response {
	handler, ok := methods[req.Method]
	if !ok {
		return errorResponse(req.ID, &Error{Code: CodeMethodNotFound, Message: req.Method})
	}
	result, err := handler(s, req.Params)
	if err != nil {
		var rpcErr *Error
		if !errors.As(err, &rpcErr) {
			rpcErr = &Error{Code: CodeServerError, Message: err.Error()}
		}
		return errorResponse(req.ID, rpcErr)
	}
	raw, merr := json.Marshal(result)
	if merr != nil {
		return errorResponse(req.ID, &Error{Code: CodeServerError, Message: merr.Error()})
	}
	return &Response{JSONRPC: "2.0", Result: raw, ID: normalizeID(req.ID)}
}

// protocolError builds a failure response for errors raised before
// dispatch (parse errors, malformed batches), counting them in the
// per-code error series that dispatch maintains for method errors.
func (s *Server) protocolError(id json.RawMessage, rpcErr *Error) *Response {
	s.metrics.errorCounter(rpcErr.Code).Inc()
	return errorResponse(id, rpcErr)
}

// errorResponse builds a failure response. A nil id marshals as null,
// the spec's value for requests whose id could not be recovered.
func errorResponse(id json.RawMessage, rpcErr *Error) *Response {
	return &Response{JSONRPC: "2.0", Error: rpcErr, ID: normalizeID(id)}
}

// normalizeID maps an absent id to explicit null so responses always
// carry the member.
func normalizeID(id json.RawMessage) json.RawMessage {
	if len(id) == 0 {
		return json.RawMessage("null")
	}
	return id
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encoding errors mean a dead connection; nothing else to do.
	_ = json.NewEncoder(w).Encode(v)
}

// UnspentOutput is the listunspent result row.
type UnspentOutput struct {
	TxID      string `json:"txid"`
	Vout      uint32 `json:"vout"`
	Value     uint64 `json:"value"`
	LockHex   string `json:"lockhex"`
	Height    int64  `json:"height"`
	Coinbase  bool   `json:"coinbase"`
	Spendable bool   `json:"spendable"`
}

// BlockSummary is the getblock result at verbosity 2. For a pruned
// height the body fields are empty and Pruned is set — the header-only
// stub has no transactions left and no valid serialization.
type BlockSummary struct {
	Hash     string   `json:"hash"`
	Height   int64    `json:"height"`
	Time     int64    `json:"time"`
	TxIDs    []string `json:"tx"`
	RawHex   string   `json:"rawhex"`
	PrevHash string   `json:"previousblockhash"`
	Pruned   bool     `json:"pruned,omitempty"`
}

// HeaderSummary is the getblockheader (and getblock verbosity-1)
// result. Headers survive pruning, so it is available at every height.
type HeaderSummary struct {
	Hash        string `json:"hash"`
	Height      int64  `json:"height"`
	Time        int64  `json:"time"`
	PrevHash    string `json:"previousblockhash"`
	MerkleRoot  string `json:"merkleroot"`
	MinerPubKey string `json:"minerpubkey"`
}

// TipSummary is one getchaintips result row.
type TipSummary struct {
	Height    int64  `json:"height"`
	Hash      string `json:"hash"`
	BranchLen int64  `json:"branchlen"`
	Status    string `json:"status"`
}

// Method handlers. Each decodes its parameters with the typed helpers
// from params.go and returns a JSON-marshalable result.

func handleGetBlockCount(s *Server, params []json.RawMessage) (any, error) {
	if err := noParams(params); err != nil {
		return nil, err
	}
	return s.backend.Chain.Height(), nil
}

func handleGetBestBlockHash(s *Server, params []json.RawMessage) (any, error) {
	if err := noParams(params); err != nil {
		return nil, err
	}
	return s.backend.Chain.Tip().ID().String(), nil
}

// blockParam resolves the hash-or-height block reference getblock and
// getblockheader share: a JSON string is a block hash, a number is a
// best-branch height.
func blockParam(s *Server, raw json.RawMessage) (*chain.Block, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var hs string
		if err := json.Unmarshal(trimmed, &hs); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		id, err := chain.HashFromString(hs)
		if err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
		}
		b, ok := s.backend.Chain.BlockByID(id)
		if !ok {
			return nil, &Error{Code: CodeInvalidParams, Message: "block not found"}
		}
		return b, nil
	}
	var height int64
	if err := json.Unmarshal(trimmed, &height); err != nil {
		return nil, &Error{Code: CodeInvalidParams, Message: "block reference must be a hash string or a height"}
	}
	b, ok := s.backend.Chain.BlockAt(height)
	if !ok {
		return nil, &Error{Code: CodeInvalidParams, Message: "block not found"}
	}
	return b, nil
}

// blockPruned reports a header-only stub left behind by pruning (only
// genesis legitimately carries no transactions).
func blockPruned(b *chain.Block) bool {
	return b.Header.Height > 0 && len(b.Txs) == 0
}

func handleGetBlock(s *Server, params []json.RawMessage) (any, error) {
	if len(params) < 1 || len(params) > 2 {
		return nil, &Error{Code: CodeInvalidParams, Message: "expected 1 or 2 parameters"}
	}
	b, err := blockParam(s, params[0])
	if err != nil {
		return nil, err
	}
	verbosity := int64(2)
	if len(params) == 2 {
		if err := json.Unmarshal(params[1], &verbosity); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: "verbosity must be a number"}
		}
	}
	switch verbosity {
	case 0:
		if blockPruned(b) {
			return nil, &Error{Code: CodeServerError,
				Message: fmt.Sprintf("block body at height %d pruned", b.Header.Height)}
		}
		return hex.EncodeToString(b.Serialize()), nil
	case 1:
		return headerSummary(b), nil
	case 2:
		return blockSummary(b), nil
	default:
		return nil, &Error{Code: CodeInvalidParams, Message: "verbosity must be 0, 1 or 2"}
	}
}

func handleGetBlockHeader(s *Server, params []json.RawMessage) (any, error) {
	if len(params) != 1 {
		return nil, &Error{Code: CodeInvalidParams, Message: "expected 1 parameter"}
	}
	b, err := blockParam(s, params[0])
	if err != nil {
		return nil, err
	}
	return headerSummary(b), nil
}

func handleGetChainTips(s *Server, params []json.RawMessage) (any, error) {
	if err := noParams(params); err != nil {
		return nil, err
	}
	tips := s.backend.Chain.Tips()
	out := make([]TipSummary, len(tips))
	for i, tip := range tips {
		status := "valid-fork"
		if tip.Active {
			status = "active"
		}
		out[i] = TipSummary{
			Height:    tip.Height,
			Hash:      tip.ID.String(),
			BranchLen: tip.BranchLen,
			Status:    status,
		}
	}
	return out, nil
}

func handleGetSyncInfo(s *Server, params []json.RawMessage) (any, error) {
	if err := noParams(params); err != nil {
		return nil, err
	}
	if s.backend.SyncInfo == nil {
		return nil, &Error{Code: CodeServerError, Message: "sync info unavailable"}
	}
	return s.backend.SyncInfo(), nil
}

func handleGetRawTransaction(s *Server, params []json.RawMessage) (any, error) {
	id, err := txIDParam(params)
	if err != nil {
		return nil, err
	}
	if tx, ok := s.backend.Mempool.Get(id); ok {
		return hex.EncodeToString(tx.Serialize()), nil
	}
	tx, _, ok := s.backend.Chain.FindTx(id)
	if !ok {
		return nil, &Error{Code: CodeInvalidParams, Message: "transaction not found"}
	}
	return hex.EncodeToString(tx.Serialize()), nil
}

func handleGetConfirmations(s *Server, params []json.RawMessage) (any, error) {
	id, err := txIDParam(params)
	if err != nil {
		return nil, err
	}
	return s.backend.Chain.Confirmations(id), nil
}

func handleSendRawTransaction(s *Server, params []json.RawMessage) (any, error) {
	txHex, err := oneParam[string](params)
	if err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(txHex)
	if err != nil {
		return nil, &Error{Code: CodeInvalidParams, Message: "bad hex"}
	}
	tx, err := chain.DeserializeTx(raw)
	if err != nil {
		return nil, &Error{Code: CodeInvalidParams, Message: err.Error()}
	}
	c := s.backend.Chain
	var acceptErr error
	c.ReadState(func(tip *chain.Block, utxo chain.UTXOReader) {
		acceptErr = s.backend.Mempool.Accept(tx, utxo, tip.Header.Height, c.Params())
	})
	if acceptErr != nil {
		return nil, &Error{Code: CodeServerError, Message: acceptErr.Error()}
	}
	if s.backend.OnTxAccepted != nil {
		s.backend.OnTxAccepted(tx)
	}
	return tx.ID().String(), nil
}

func handleListUnspent(s *Server, params []json.RawMessage) (any, error) {
	hash, err := pubKeyHashParam(params)
	if err != nil {
		return nil, err
	}
	utxo := s.backend.Chain.UTXO()
	out := []UnspentOutput{}
	for _, op := range utxo.FindByPubKeyHash(hash) {
		entry, _ := utxo.Get(op)
		out = append(out, UnspentOutput{
			TxID:      op.TxID.String(),
			Vout:      op.Index,
			Value:     entry.Out.Value,
			LockHex:   hex.EncodeToString(entry.Out.Lock),
			Height:    entry.Height,
			Coinbase:  entry.Coinbase,
			Spendable: true,
		})
	}
	return out, nil
}

func handleGetBalance(s *Server, params []json.RawMessage) (any, error) {
	hash, err := pubKeyHashParam(params)
	if err != nil {
		return nil, err
	}
	return s.backend.Chain.UTXO().BalanceOf(hash), nil
}

// handleGetMetrics returns the telemetry snapshot as JSON — the same
// series GET /metrics serves as Prometheus text, so the two expositions
// can never drift.
func handleGetMetrics(s *Server, params []json.RawMessage) (any, error) {
	if err := noParams(params); err != nil {
		return nil, err
	}
	reg := s.backend.Telemetry
	if reg == nil {
		return nil, &Error{Code: CodeServerError, Message: "telemetry disabled"}
	}
	return reg.Snapshot(), nil
}

// channelOps resolves the late-bound channel subsystem, failing with a
// server error while (or wherever) it is disabled.
func (s *Server) channelOps() (ChannelOps, error) {
	if s.backend.Channels != nil {
		if ops := s.backend.Channels(); ops != nil {
			return ops, nil
		}
	}
	return nil, &Error{Code: CodeServerError, Message: "channel subsystem disabled"}
}

// handleOpenChannel funds a payment channel: params are the gateway's
// p2p address and an optional capacity (0 or absent = daemon default).
func handleOpenChannel(s *Server, params []json.RawMessage) (any, error) {
	ops, err := s.channelOps()
	if err != nil {
		return nil, err
	}
	if len(params) < 1 || len(params) > 2 {
		return nil, &Error{Code: CodeInvalidParams, Message: "expected 1 or 2 parameters"}
	}
	var peer string
	if err := json.Unmarshal(params[0], &peer); err != nil {
		return nil, &Error{Code: CodeInvalidParams, Message: "peer must be a string"}
	}
	var capacity uint64
	if len(params) == 2 {
		if err := json.Unmarshal(params[1], &capacity); err != nil {
			return nil, &Error{Code: CodeInvalidParams, Message: "capacity must be a number"}
		}
	}
	return ops.OpenChannel(peer, capacity)
}

func handleGetChannelInfo(s *Server, params []json.RawMessage) (any, error) {
	ops, err := s.channelOps()
	if err != nil {
		return nil, err
	}
	id, err := oneParam[string](params)
	if err != nil {
		return nil, err
	}
	return ops.ChannelInfo(id)
}

func handleCloseChannel(s *Server, params []json.RawMessage) (any, error) {
	ops, err := s.channelOps()
	if err != nil {
		return nil, err
	}
	id, err := oneParam[string](params)
	if err != nil {
		return nil, err
	}
	return ops.CloseChannel(id)
}

func handleListChannels(s *Server, params []json.RawMessage) (any, error) {
	ops, err := s.channelOps()
	if err != nil {
		return nil, err
	}
	if err := noParams(params); err != nil {
		return nil, err
	}
	return ops.ListChannels()
}

// handleListMethods returns the method catalog, so clients can discover
// the dispatch table.
func handleListMethods(_ *Server, params []json.RawMessage) (any, error) {
	if err := noParams(params); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(methods))
	for name := range methods {
		names = append(names, name)
	}
	// Deterministic order for clients and tests.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names, nil
}

func blockSummary(b *chain.Block) BlockSummary {
	out := BlockSummary{
		Hash:     b.ID().String(),
		Height:   b.Header.Height,
		Time:     b.Header.Time,
		TxIDs:    []string{},
		PrevHash: b.Header.PrevBlock.String(),
	}
	if blockPruned(b) {
		out.Pruned = true
		return out
	}
	for _, tx := range b.Txs {
		out.TxIDs = append(out.TxIDs, tx.ID().String())
	}
	out.RawHex = hex.EncodeToString(b.Serialize())
	return out
}

func headerSummary(b *chain.Block) HeaderSummary {
	return HeaderSummary{
		Hash:        b.ID().String(),
		Height:      b.Header.Height,
		Time:        b.Header.Time,
		PrevHash:    b.Header.PrevBlock.String(),
		MerkleRoot:  b.Header.MerkleRoot.String(),
		MinerPubKey: hex.EncodeToString(b.Header.MinerPubKey),
	}
}
