package rpc

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bcwan/internal/chain"
)

// Typed parameter decoding shared by the server's method handlers and
// the client's convenience wrappers.

// noParams rejects any supplied parameters.
func noParams(params []json.RawMessage) error {
	if len(params) != 0 {
		return &Error{Code: CodeInvalidParams, Message: "expected no parameters"}
	}
	return nil
}

// oneParam decodes a single positional parameter of type T.
func oneParam[T any](params []json.RawMessage) (T, error) {
	var out T
	if len(params) != 1 {
		return out, &Error{Code: CodeInvalidParams, Message: "expected 1 parameter"}
	}
	if err := json.Unmarshal(params[0], &out); err != nil {
		return out, &Error{Code: CodeInvalidParams, Message: err.Error()}
	}
	return out, nil
}

// txIDParam decodes a single hex transaction-id parameter.
func txIDParam(params []json.RawMessage) (chain.Hash, error) {
	s, err := oneParam[string](params)
	if err != nil {
		return chain.Hash{}, err
	}
	id, err := chain.HashFromString(s)
	if err != nil {
		return chain.Hash{}, &Error{Code: CodeInvalidParams, Message: err.Error()}
	}
	return id, nil
}

// pubKeyHashParam decodes a single hex-encoded 20-byte pubkey-hash
// parameter — the address form listunspent and getbalance share.
func pubKeyHashParam(params []json.RawMessage) ([20]byte, error) {
	s, err := oneParam[string](params)
	if err != nil {
		return [20]byte{}, err
	}
	hash, err := DecodePubKeyHash(s)
	if err != nil {
		return [20]byte{}, &Error{Code: CodeInvalidParams, Message: err.Error()}
	}
	return hash, nil
}

// DecodePubKeyHash parses the hex encoding of a 20-byte public-key hash,
// the address format the wallet RPCs use on the wire.
func DecodePubKeyHash(s string) ([20]byte, error) {
	var hash [20]byte
	raw, err := hex.DecodeString(s)
	if err != nil {
		return hash, fmt.Errorf("pubkey hash must be hex: %w", err)
	}
	if len(raw) != len(hash) {
		return hash, fmt.Errorf("pubkey hash must be %d bytes, got %d", len(hash), len(raw))
	}
	copy(hash[:], raw)
	return hash, nil
}

// EncodePubKeyHash renders a pubkey hash in the wire format
// DecodePubKeyHash parses.
func EncodePubKeyHash(hash [20]byte) string { return hex.EncodeToString(hash[:]) }
