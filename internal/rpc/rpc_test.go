package rpc

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/telemetry"
	"bcwan/internal/wallet"
)

type fixture struct {
	t       *testing.T
	chain   *chain.Chain
	mempool *chain.Mempool
	miner   *chain.Miner
	alice   *wallet.Wallet
	bob     *wallet.Wallet
	server  *Server
	client  *Client
	gossip  []*chain.Tx
	reg     *telemetry.Registry
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	alice, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{alice.PubKeyHash(): 1_000_000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	pool.UseVerifier(c.Verifier())
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	pool.Instrument(reg)

	f := &fixture{
		t:       t,
		chain:   c,
		mempool: pool,
		miner:   chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		alice:   alice,
		bob:     bob,
		reg:     reg,
	}
	f.server, err = NewServer("", Backend{
		Chain:        c,
		Mempool:      pool,
		OnTxAccepted: func(tx *chain.Tx) { f.gossip = append(f.gossip, tx) },
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.server.Close() })
	f.client = NewClient(f.server.Addr())
	return f
}

// rawPost sends an arbitrary body and returns status plus response body.
func (f *fixture) rawPost(body string) (int, []byte) {
	f.t.Helper()
	resp, err := http.Post("http://"+f.server.Addr()+"/", "application/json", strings.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		f.t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestGetBlockCount(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	h, err := f.client.GetBlockCount(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("height = %d, want 0", h)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	h, err = f.client.GetBlockCount(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
}

func TestSendRawTransactionRoundTrip(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	tx, err := f.alice.BuildPayment(f.chain.UTXO(), f.bob.PubKeyHash(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	txid, err := f.client.SendRawTransaction(ctx, tx)
	if err != nil {
		t.Fatal(err)
	}
	if txid != tx.ID() {
		t.Fatalf("txid = %s, want %s", txid, tx.ID())
	}
	if !f.mempool.Contains(tx.ID()) {
		t.Fatal("transaction not in mempool")
	}
	if len(f.gossip) != 1 {
		t.Fatalf("gossip callbacks = %d, want 1", len(f.gossip))
	}

	// Fetch it back from the mempool.
	back, err := f.client.GetRawTransaction(ctx, tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != tx.ID() {
		t.Fatal("mempool fetch mismatch")
	}

	// After mining, confirmations report 1 and getblock returns it.
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	conf, err := f.client.GetConfirmations(ctx, tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if conf != 1 {
		t.Fatalf("confirmations = %d, want 1", conf)
	}
	blk, err := f.client.GetBlock(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, btx := range blk.Txs {
		if btx.ID() == tx.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("transaction not in fetched block")
	}
}

func TestSendRawTransactionRejectsInvalid(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	// bob has no funds; a self-built spend of nonexistent coins fails.
	tx, err := f.alice.BuildPayment(f.chain.UTXO(), f.bob.PubKeyHash(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	tx.Inputs[0].Prev.Index = 999 // nonexistent outpoint
	if _, err := f.client.SendRawTransaction(ctx, tx); err == nil {
		t.Fatal("invalid transaction accepted")
	}
	var rpcErr *Error
	if _, err := f.client.SendRawTransaction(ctx, tx); !errors.As(err, &rpcErr) {
		t.Fatalf("err = %T, want *rpc.Error", err)
	}
}

func TestListUnspentAndBalance(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	outs, err := f.client.ListUnspent(ctx, f.alice.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Value != 1_000_000 {
		t.Fatalf("unspent = %+v", outs)
	}
	bal, err := f.client.GetBalance(ctx, f.alice.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1_000_000 {
		t.Fatalf("balance = %d", bal)
	}
	empty, err := f.client.ListUnspent(ctx, f.bob.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("bob unspent = %+v, want none", empty)
	}
}

func TestUnknownMethod(t *testing.T) {
	f := newFixture(t)
	err := f.client.Call(context.Background(), "getwalletinfo", nil)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeMethodNotFound {
		t.Fatalf("err = %v, want method-not-found", err)
	}
}

func TestBadParams(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	var out string
	err := f.client.Call(ctx, "getblock", &out) // missing param
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params", err)
	}
	err = f.client.Call(ctx, "getblock", &out, 99999) // out of range
	if !errors.As(err, &rpcErr) {
		t.Fatalf("err = %v, want rpc.Error", err)
	}
	err = f.client.Call(ctx, "getrawtransaction", &out, "nothex")
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params", err)
	}
	err = f.client.Call(ctx, "listunspent", nil, "abcd")
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params", err)
	}
	err = f.client.Call(ctx, "getblockcount", nil, "extra")
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params for extra arg", err)
	}
}

func TestGetBestBlockHash(t *testing.T) {
	f := newFixture(t)
	var hash string
	if err := f.client.Call(context.Background(), "getbestblockhash", &hash); err != nil {
		t.Fatal(err)
	}
	if hash != f.chain.Tip().ID().String() {
		t.Fatalf("best hash = %s", hash)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	f := newFixture(t)
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.GetBlockCount(context.Background()); err == nil {
		t.Fatal("request succeeded after close")
	}
}

// TestJSONRPC20Envelope checks the 2.0 wire format: version member,
// id echo (including string ids), and legacy requests without a
// jsonrpc member still being served.
func TestJSONRPC20Envelope(t *testing.T) {
	f := newFixture(t)
	status, body := f.rawPost(`{"jsonrpc":"2.0","method":"getblockcount","params":[],"id":"abc-1"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.JSONRPC != "2.0" {
		t.Fatalf("jsonrpc = %q, want 2.0", resp.JSONRPC)
	}
	if string(bytes.TrimSpace(resp.ID)) != `"abc-1"` {
		t.Fatalf("id = %s, want \"abc-1\"", resp.ID)
	}
	if resp.Error != nil {
		t.Fatalf("error = %v", resp.Error)
	}

	// Legacy 1.0-style request: no jsonrpc member, integer id.
	_, body = f.rawPost(`{"method":"getblockcount","params":[],"id":7}`)
	resp = Response{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != nil || string(bytes.TrimSpace(resp.ID)) != "7" {
		t.Fatalf("legacy response = %+v", resp)
	}
}

// TestParseErrorObject checks that malformed bodies produce a JSON-RPC
// error object with code -32700 and a null id — not a bare HTTP error.
func TestParseErrorObject(t *testing.T) {
	f := newFixture(t)
	status, body := f.rawPost(`{"method": "getblockcount", `) // truncated
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 with error object", status)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("body %q not a response object: %v", body, err)
	}
	if resp.Error == nil || resp.Error.Code != CodeParseError {
		t.Fatalf("error = %+v, want code %d", resp.Error, CodeParseError)
	}
	if string(bytes.TrimSpace(resp.ID)) != "null" {
		t.Fatalf("id = %s, want null", resp.ID)
	}
}

// TestNotification checks that requests without an id get no response
// body.
func TestNotification(t *testing.T) {
	f := newFixture(t)
	status, body := f.rawPost(`{"jsonrpc":"2.0","method":"getblockcount","params":[]}`)
	if status != http.StatusNoContent {
		t.Fatalf("status = %d, want 204", status)
	}
	if len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("notification got body %q", body)
	}
}

// TestBatchRequests covers the raw batch shape: ordered responses,
// notifications omitted, invalid entries answered in place.
func TestBatchRequests(t *testing.T) {
	f := newFixture(t)
	status, body := f.rawPost(`[
		{"jsonrpc":"2.0","method":"getblockcount","params":[],"id":1},
		{"jsonrpc":"2.0","method":"getblockcount","params":[]},
		{"jsonrpc":"2.0","method":"nosuchmethod","params":[],"id":2},
		42
	]`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var resps []Response
	if err := json.Unmarshal(body, &resps); err != nil {
		t.Fatalf("batch body %q: %v", body, err)
	}
	if len(resps) != 3 {
		t.Fatalf("responses = %d, want 3 (notification omitted)", len(resps))
	}
	if resps[0].Error != nil || string(bytes.TrimSpace(resps[0].ID)) != "1" {
		t.Fatalf("first = %+v", resps[0])
	}
	if resps[1].Error == nil || resps[1].Error.Code != CodeMethodNotFound {
		t.Fatalf("second = %+v, want method-not-found", resps[1])
	}
	if resps[2].Error == nil || resps[2].Error.Code != CodeInvalidRequest {
		t.Fatalf("third = %+v, want invalid-request", resps[2])
	}

	// Empty batch: single invalid-request error object.
	_, body = f.rawPost(`[]`)
	var single Response
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if single.Error == nil || single.Error.Code != CodeInvalidRequest {
		t.Fatalf("empty batch error = %+v", single.Error)
	}
}

// TestCallBatchClient exercises the client-side batch API end to end.
func TestCallBatchClient(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	tx, err := f.alice.BuildPayment(f.chain.UTXO(), f.bob.PubKeyHash(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.SendRawTransaction(ctx, tx); err != nil {
		t.Fatal(err)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}

	var height int64
	var conf int64
	calls := []BatchCall{
		{Method: "getblockcount", Out: &height},
		{Method: "getconfirmations", Params: []any{tx.ID().String()}, Out: &conf},
		{Method: "nosuchmethod"},
	}
	if err := f.client.CallBatch(ctx, calls); err != nil {
		t.Fatal(err)
	}
	if calls[0].Err != nil || height != 1 {
		t.Fatalf("height call = %v, height = %d", calls[0].Err, height)
	}
	if calls[1].Err != nil || conf != 1 {
		t.Fatalf("conf call = %v, conf = %d", calls[1].Err, conf)
	}
	var rpcErr *Error
	if !errors.As(calls[2].Err, &rpcErr) || rpcErr.Code != CodeMethodNotFound {
		t.Fatalf("bad call err = %v, want method-not-found", calls[2].Err)
	}

	// The gateway idiom: poll many confirmations in one round trip.
	confs, err := f.client.GetConfirmationsBatch(ctx, []chain.Hash{tx.ID(), tx.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if len(confs) != 2 || confs[0] != 1 || confs[1] != 1 {
		t.Fatalf("confs = %v", confs)
	}
}

// TestListMethods checks the dispatch-table catalog endpoint.
func TestListMethods(t *testing.T) {
	f := newFixture(t)
	var names []string
	if err := f.client.Call(context.Background(), "listmethods", &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != len(methods) {
		t.Fatalf("listmethods = %d entries, registry has %d", len(names), len(methods))
	}
	for _, want := range []string{"getblockcount", "sendrawtransaction", "listunspent"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("method %q missing from catalog %v", want, names)
		}
	}
}

// TestBodySizeCap checks that oversized request bodies are refused with
// a parse-error object instead of being read to completion.
func TestBodySizeCap(t *testing.T) {
	f := newFixture(t)
	huge := `{"method":"getblockcount","params":["` + strings.Repeat("a", maxRequestBytes+1024) + `"],"id":1}`
	_, body := f.rawPost(huge)
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("oversize body answer %q: %v", body[:min(len(body), 200)], err)
	}
	if resp.Error == nil || resp.Error.Code != CodeParseError {
		t.Fatalf("error = %+v, want parse error", resp.Error)
	}
}

// TestCallTimeout checks the per-call deadline fires.
func TestCallTimeout(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	if _, err := f.client.GetBlockCount(ctx); err == nil {
		t.Fatal("call with canceled context succeeded")
	}
}

// TestConcurrentRPCAndMining is the race-focused test: blocks connect
// (parallel script verification, reorg-free fast path) while RPC
// clients hammer listunspent/getbalance and submit transactions. Run
// under -race this exercises the Chain lock, the shared signature
// cache and the memoized transaction IDs together.
func TestConcurrentRPCAndMining(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	const blocks = 8

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)

	// Reader goroutines: wallet state polls.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.client.ListUnspent(ctx, f.alice.PubKeyHash()); err != nil {
					errCh <- fmt.Errorf("listunspent: %w", err)
					return
				}
				if _, err := f.client.GetBalance(ctx, f.bob.PubKeyHash()); err != nil {
					errCh <- fmt.Errorf("getbalance: %w", err)
					return
				}
			}
		}()
	}

	// Writer goroutine: submit payments through the RPC path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := f.alice.BuildPayment(f.chain.UTXO(), f.bob.PubKeyHash(), 10, 1)
			if err != nil {
				// Wallet raced the miner for its own change; retry.
				time.Sleep(time.Millisecond)
				continue
			}
			// Mempool conflicts with in-flight change are expected.
			_, _ = f.client.SendRawTransaction(ctx, tx)
			time.Sleep(time.Millisecond)
		}
	}()

	// Mining loop on the test goroutine.
	for i := 0; i < blocks; i++ {
		if _, err := f.miner.Mine(time.Now()); err != nil {
			t.Fatalf("mine %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	h, err := f.client.GetBlockCount(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h != blocks {
		t.Fatalf("height = %d, want %d", h, blocks)
	}
}

func TestGetBlockHeaderAndVerbosity(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	b, _ := f.chain.BlockAt(1)

	hdr, err := f.client.GetBlockHeader(ctx, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	byHash, err := f.client.GetBlockHeader(ctx, b.ID().String())
	if err != nil {
		t.Fatal(err)
	}
	if hdr != byHash {
		t.Fatal("height and hash references resolve different headers")
	}
	if hdr.Hash != b.ID().String() || hdr.Height != 1 || hdr.PrevHash != b.Header.PrevBlock.String() {
		t.Fatalf("header summary mismatch: %+v", hdr)
	}

	// Verbosity 0 returns the canonical serialization.
	raw, err := f.client.GetRawBlock(ctx, b.ID().String())
	if err != nil {
		t.Fatal(err)
	}
	if raw.ID() != b.ID() {
		t.Fatal("raw block round trip changed the ID")
	}

	// Verbosity 1 is the same header summary under getblock.
	var hdr1 HeaderSummary
	if err := f.client.Call(ctx, "getblock", &hdr1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if hdr1 != hdr {
		t.Fatal("getblock verbosity 1 differs from getblockheader")
	}

	// Unknown verbosity is rejected.
	err = f.client.Call(ctx, "getblock", nil, 1, 3)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("verbosity 3: err = %v, want invalid-params", err)
	}
}

func TestGetBlockPrunedHeight(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := f.miner.Mine(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.chain.PruneBelow(3); err != nil {
		t.Fatal(err)
	}

	// The raw form is gone...
	err := f.client.Call(ctx, "getblock", new(string), 2, 0)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeServerError {
		t.Fatalf("pruned raw block: err = %v, want server error", err)
	}
	// ...the summary says so instead of serving an empty body...
	var sum BlockSummary
	if err := f.client.Call(ctx, "getblock", &sum, 2); err != nil {
		t.Fatal(err)
	}
	if !sum.Pruned || sum.RawHex != "" || len(sum.TxIDs) != 0 {
		t.Fatalf("pruned summary = %+v", sum)
	}
	// ...and the header survives pruning.
	hdr, err := f.client.GetBlockHeader(ctx, int64(2))
	if err != nil || hdr.Height != 2 {
		t.Fatalf("pruned header: %+v, %v", hdr, err)
	}
	// Heights above the horizon still serve their bodies.
	if _, err := f.client.GetRawBlock(ctx, int64(5)); err != nil {
		t.Fatal(err)
	}
}

func TestGetChainTips(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := f.miner.Mine(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	tips, err := f.client.GetChainTips(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tips) != 1 {
		t.Fatalf("tips = %d, want 1", len(tips))
	}
	if tips[0].Status != "active" || tips[0].Height != 2 || tips[0].Hash != f.chain.Tip().ID().String() {
		t.Fatalf("tip = %+v", tips[0])
	}
}

func TestGetSyncInfoUnavailable(t *testing.T) {
	f := newFixture(t) // the bare fixture backend wires no SyncInfo
	err := f.client.Call(context.Background(), "getsyncinfo", nil)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeServerError {
		t.Fatalf("err = %v, want server error", err)
	}
}
