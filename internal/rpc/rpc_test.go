package rpc

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

type fixture struct {
	t       *testing.T
	chain   *chain.Chain
	mempool *chain.Mempool
	miner   *chain.Miner
	alice   *wallet.Wallet
	bob     *wallet.Wallet
	server  *Server
	client  *Client
	gossip  []*chain.Tx
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	alice, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{alice.PubKeyHash(): 1_000_000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()

	f := &fixture{
		t:       t,
		chain:   c,
		mempool: pool,
		miner:   chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		alice:   alice,
		bob:     bob,
	}
	f.server, err = NewServer("", Backend{
		Chain:        c,
		Mempool:      pool,
		OnTxAccepted: func(tx *chain.Tx) { f.gossip = append(f.gossip, tx) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.server.Close() })
	f.client = NewClient(f.server.Addr())
	return f
}

func TestGetBlockCount(t *testing.T) {
	f := newFixture(t)
	h, err := f.client.GetBlockCount()
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("height = %d, want 0", h)
	}
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	h, err = f.client.GetBlockCount()
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
}

func TestSendRawTransactionRoundTrip(t *testing.T) {
	f := newFixture(t)
	tx, err := f.alice.BuildPayment(f.chain.UTXO(), f.bob.PubKeyHash(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	txid, err := f.client.SendRawTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if txid != tx.ID() {
		t.Fatalf("txid = %s, want %s", txid, tx.ID())
	}
	if !f.mempool.Contains(tx.ID()) {
		t.Fatal("transaction not in mempool")
	}
	if len(f.gossip) != 1 {
		t.Fatalf("gossip callbacks = %d, want 1", len(f.gossip))
	}

	// Fetch it back from the mempool.
	back, err := f.client.GetRawTransaction(tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != tx.ID() {
		t.Fatal("mempool fetch mismatch")
	}

	// After mining, confirmations report 1 and getblock returns it.
	if _, err := f.miner.Mine(time.Now()); err != nil {
		t.Fatal(err)
	}
	conf, err := f.client.GetConfirmations(tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if conf != 1 {
		t.Fatalf("confirmations = %d, want 1", conf)
	}
	blk, err := f.client.GetBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, btx := range blk.Txs {
		if btx.ID() == tx.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("transaction not in fetched block")
	}
}

func TestSendRawTransactionRejectsInvalid(t *testing.T) {
	f := newFixture(t)
	// bob has no funds; a self-built spend of nonexistent coins fails.
	tx, err := f.alice.BuildPayment(f.chain.UTXO(), f.bob.PubKeyHash(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	tx.Inputs[0].Prev.Index = 999 // nonexistent outpoint
	if _, err := f.client.SendRawTransaction(tx); err == nil {
		t.Fatal("invalid transaction accepted")
	}
	var rpcErr *Error
	if _, err := f.client.SendRawTransaction(tx); !errors.As(err, &rpcErr) {
		t.Fatalf("err = %T, want *rpc.Error", err)
	}
}

func TestListUnspentAndBalance(t *testing.T) {
	f := newFixture(t)
	outs, err := f.client.ListUnspent(f.alice.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Value != 1_000_000 {
		t.Fatalf("unspent = %+v", outs)
	}
	bal, err := f.client.GetBalance(f.alice.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1_000_000 {
		t.Fatalf("balance = %d", bal)
	}
	empty, err := f.client.ListUnspent(f.bob.PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("bob unspent = %+v, want none", empty)
	}
}

func TestUnknownMethod(t *testing.T) {
	f := newFixture(t)
	err := f.client.Call("getwalletinfo", nil)
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeMethodNotFound {
		t.Fatalf("err = %v, want method-not-found", err)
	}
}

func TestBadParams(t *testing.T) {
	f := newFixture(t)
	var out string
	err := f.client.Call("getblock", &out) // missing param
	var rpcErr *Error
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params", err)
	}
	err = f.client.Call("getblock", &out, 99999) // out of range
	if !errors.As(err, &rpcErr) {
		t.Fatalf("err = %v, want rpc.Error", err)
	}
	err = f.client.Call("getrawtransaction", &out, "nothex")
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params", err)
	}
	err = f.client.Call("listunspent", nil, "abcd")
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeInvalidParams {
		t.Fatalf("err = %v, want invalid-params", err)
	}
}

func TestGetBestBlockHash(t *testing.T) {
	f := newFixture(t)
	var hash string
	if err := f.client.Call("getbestblockhash", &hash); err != nil {
		t.Fatal(err)
	}
	if hash != f.chain.Tip().ID().String() {
		t.Fatalf("best hash = %s", hash)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	f := newFixture(t)
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.GetBlockCount(); err == nil {
		t.Fatal("request succeeded after close")
	}
}
