package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements BIP152-style compact block relay primitives: a
// freshly mined block crosses the wire as its header, a short id per
// transaction and the prefilled coinbase; receivers resolve the short
// ids against their mempool and round-trip getblocktxn/blocktxn for
// only the transactions they lack. The daemon owns the wire handling;
// this file owns encoding, reconstruction and the merkle cross-check.

// Compact block errors.
var (
	// ErrCompactMismatch reports a reconstruction whose transactions do
	// not hash to the header's merkle root (short-id collision picked
	// the wrong transaction, or the sender lied). The caller must fall
	// back to requesting the full block.
	ErrCompactMismatch = errors.New("chain: reconstructed block fails merkle check")
	// ErrCompactMalformed reports a structurally invalid compact block
	// or transaction-request encoding.
	ErrCompactMalformed = errors.New("chain: malformed compact block encoding")
)

// ShortTxID is the compact relay's abbreviated transaction id: the
// first 8 bytes of the txid, big-endian. 64 bits keep the collision
// probability across a mempool of thousands negligible, and any
// collision that does slip through is caught by the merkle check and
// downgraded to a full-block fetch.
func ShortTxID(id Hash) uint64 { return binary.BigEndian.Uint64(id[:8]) }

// PrefilledTx is a transaction shipped in full inside a compact block
// (or a blocktxn response), pinned to its absolute index in the block.
type PrefilledTx struct {
	Index uint32
	Tx    *Tx
}

// CompactBlock is the sketch of a block: the full header, a short id
// for every transaction the receiver is expected to already hold, and
// the handful shipped in full. ShortIDs are ordered by block position
// with the prefilled indexes skipped.
type CompactBlock struct {
	Header    Header
	ShortIDs  []uint64
	Prefilled []PrefilledTx
}

// NewCompactBlock sketches b, prefilling the coinbase (index 0) — the
// one transaction no receiver's mempool can hold.
func NewCompactBlock(b *Block) *CompactBlock {
	cb := &CompactBlock{Header: b.Header}
	if len(b.Txs) > 0 {
		cb.Prefilled = []PrefilledTx{{Index: 0, Tx: b.Txs[0]}}
		for _, tx := range b.Txs[1:] {
			cb.ShortIDs = append(cb.ShortIDs, ShortTxID(tx.ID()))
		}
	}
	return cb
}

// BlockID returns the hash of the block this sketch describes.
func (cb *CompactBlock) BlockID() Hash { return cb.Header.ID() }

// TxCount is the number of transactions in the sketched block.
func (cb *CompactBlock) TxCount() int { return len(cb.ShortIDs) + len(cb.Prefilled) }

// Reconstruct resolves the sketch against the receiver's transaction
// source. lookup returns every known transaction matching a short id —
// zero or several matches both count as missing, since guessing among
// collisions would only waste a merkle failure. On full resolution it
// returns the verified block. Otherwise it returns the partial
// transaction slice (nil at each unresolved index) and the sorted
// missing indexes for a getblocktxn request; the caller later completes
// via Assemble.
func (cb *CompactBlock) Reconstruct(lookup func(uint64) []*Tx) (*Block, []*Tx, []uint32, error) {
	total := cb.TxCount()
	txs := make([]*Tx, total)
	for _, p := range cb.Prefilled {
		if int(p.Index) >= total || p.Tx == nil || txs[p.Index] != nil {
			return nil, nil, nil, ErrCompactMalformed
		}
		txs[p.Index] = p.Tx
	}
	var missing []uint32
	si := 0
	for i := range txs {
		if txs[i] != nil {
			continue
		}
		if si >= len(cb.ShortIDs) {
			return nil, nil, nil, ErrCompactMalformed
		}
		if cands := lookup(cb.ShortIDs[si]); len(cands) == 1 {
			txs[i] = cands[0]
		} else {
			missing = append(missing, uint32(i))
		}
		si++
	}
	if len(missing) > 0 {
		return nil, txs, missing, nil
	}
	b, err := cb.finish(txs)
	return b, txs, nil, err
}

// Assemble completes a partial reconstruction with the transactions a
// blocktxn response shipped by absolute index, then runs the merkle
// check. Unfilled slots or a root mismatch surface as errors — the
// caller's next rung is the full block.
func (cb *CompactBlock) Assemble(partial []*Tx, fills []PrefilledTx) (*Block, error) {
	if len(partial) != cb.TxCount() {
		return nil, ErrCompactMalformed
	}
	txs := make([]*Tx, len(partial))
	copy(txs, partial)
	for _, f := range fills {
		if int(f.Index) >= len(txs) || f.Tx == nil {
			return nil, ErrCompactMalformed
		}
		txs[f.Index] = f.Tx
	}
	for _, tx := range txs {
		if tx == nil {
			return nil, ErrCompactMalformed
		}
	}
	return cb.finish(txs)
}

// finish cross-checks the candidate transaction list against the
// header's merkle commitment and assembles the block.
func (cb *CompactBlock) finish(txs []*Tx) (*Block, error) {
	if MerkleRoot(txs) != cb.Header.MerkleRoot {
		return nil, ErrCompactMismatch
	}
	return &Block{Header: cb.Header, Txs: txs}, nil
}

// Serialize encodes the compact block for the wire.
func (cb *CompactBlock) Serialize() []byte {
	var buf bytes.Buffer
	cb.Header.serialize(&buf)
	writeVarInt(&buf, uint64(len(cb.ShortIDs)))
	var sid [8]byte
	for _, s := range cb.ShortIDs {
		binary.BigEndian.PutUint64(sid[:], s)
		buf.Write(sid[:])
	}
	writePrefilled(&buf, cb.Prefilled)
	return buf.Bytes()
}

// DeserializeCompactBlock parses a Serialize encoding.
func DeserializeCompactBlock(data []byte) (*CompactBlock, error) {
	r := bytes.NewReader(data)
	var cb CompactBlock
	var err error
	if cb.Header, err = readHeader(r); err != nil {
		return nil, err
	}
	n, err := readVarInt(r)
	if err != nil {
		return nil, err
	}
	if n > 1_000_000 {
		return nil, ErrCompactMalformed
	}
	cb.ShortIDs = make([]uint64, n)
	var sid [8]byte
	for i := range cb.ShortIDs {
		if _, err := io.ReadFull(r, sid[:]); err != nil {
			return nil, ErrCompactMalformed
		}
		cb.ShortIDs[i] = binary.BigEndian.Uint64(sid[:])
	}
	if cb.Prefilled, err = readPrefilled(r); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, ErrCompactMalformed
	}
	return &cb, nil
}

// EncodeGetBlockTxn frames a request for the block's transactions at
// the given absolute indexes.
func EncodeGetBlockTxn(blockID Hash, indexes []uint32) []byte {
	var buf bytes.Buffer
	buf.Write(blockID[:])
	writeVarInt(&buf, uint64(len(indexes)))
	for _, i := range indexes {
		writeVarInt(&buf, uint64(i))
	}
	return buf.Bytes()
}

// DecodeGetBlockTxn parses an EncodeGetBlockTxn frame.
func DecodeGetBlockTxn(data []byte) (Hash, []uint32, error) {
	r := bytes.NewReader(data)
	var id Hash
	if _, err := io.ReadFull(r, id[:]); err != nil {
		return Hash{}, nil, ErrCompactMalformed
	}
	n, err := readVarInt(r)
	if err != nil || n > 1_000_000 {
		return Hash{}, nil, ErrCompactMalformed
	}
	indexes := make([]uint32, n)
	for i := range indexes {
		v, err := readVarInt(r)
		if err != nil || v > 1_000_000 {
			return Hash{}, nil, ErrCompactMalformed
		}
		indexes[i] = uint32(v)
	}
	if r.Len() != 0 {
		return Hash{}, nil, ErrCompactMalformed
	}
	return id, indexes, nil
}

// EncodeBlockTxn frames the answer to a getblocktxn: the requested
// transactions in full, pinned to their indexes.
func EncodeBlockTxn(blockID Hash, txs []PrefilledTx) []byte {
	var buf bytes.Buffer
	buf.Write(blockID[:])
	writePrefilled(&buf, txs)
	return buf.Bytes()
}

// DecodeBlockTxn parses an EncodeBlockTxn frame.
func DecodeBlockTxn(data []byte) (Hash, []PrefilledTx, error) {
	r := bytes.NewReader(data)
	var id Hash
	if _, err := io.ReadFull(r, id[:]); err != nil {
		return Hash{}, nil, ErrCompactMalformed
	}
	txs, err := readPrefilled(r)
	if err != nil {
		return Hash{}, nil, err
	}
	if r.Len() != 0 {
		return Hash{}, nil, ErrCompactMalformed
	}
	return id, txs, nil
}

func writePrefilled(buf *bytes.Buffer, txs []PrefilledTx) {
	writeVarInt(buf, uint64(len(txs)))
	for _, p := range txs {
		writeVarInt(buf, uint64(p.Index))
		writeVarBytes(buf, p.Tx.memoized().raw)
	}
}

func readPrefilled(r *bytes.Reader) ([]PrefilledTx, error) {
	n, err := readVarInt(r)
	if err != nil || n > 1_000_000 {
		return nil, ErrCompactMalformed
	}
	out := make([]PrefilledTx, n)
	for i := range out {
		idx, err := readVarInt(r)
		if err != nil || idx > 1_000_000 {
			return nil, ErrCompactMalformed
		}
		raw, err := readVarBytes(r, maxTxSize)
		if err != nil {
			return nil, ErrCompactMalformed
		}
		tx, err := DeserializeTx(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: prefilled tx %d: %v", ErrCompactMalformed, i, err)
		}
		out[i] = PrefilledTx{Index: uint32(idx), Tx: tx}
	}
	return out, nil
}
