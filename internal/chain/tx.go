package chain

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"bcwan/internal/bccrypto"
	"bcwan/internal/script"
)

// Hash identifies transactions and blocks (double SHA-256 of their
// serialization).
type Hash [32]byte

// String renders the hash in hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is all zeros.
func (h Hash) IsZero() bool { return h == Hash{} }

// HashFromString parses a hex hash.
func HashFromString(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("chain: bad hash hex: %w", err)
	}
	if len(b) != len(h) {
		return h, fmt.Errorf("chain: hash length %d, want %d", len(b), len(h))
	}
	copy(h[:], b)
	return h, nil
}

// OutPoint references a transaction output.
type OutPoint struct {
	TxID  Hash
	Index uint32
}

// String renders the outpoint as txid:index.
func (o OutPoint) String() string { return fmt.Sprintf("%s:%d", o.TxID, o.Index) }

// TxIn spends a previous output.
type TxIn struct {
	Prev   OutPoint
	Unlock script.Script
}

// TxOut creates a new spendable (or OP_RETURN data) output.
type TxOut struct {
	Value uint64
	Lock  script.Script
}

// Tx is a transaction. LockTime, when nonzero, is the earliest block
// height at which the transaction may be mined (BIP-65 semantics, used by
// the fair-exchange refund path).
//
// Serialization and the transaction ID are memoized on first use: a Tx
// must not be mutated after the first call to Serialize, SerializedSize
// or ID. Construction code (wallet signing, deserialization) finishes
// all field writes before anything hashes the transaction, so the
// contract holds everywhere a Tx crosses a validation boundary.
type Tx struct {
	Version  int32
	Inputs   []TxIn
	Outputs  []TxOut
	LockTime int64

	// memo caches the canonical serialization and ID. Lock-free: a
	// racing first computation produces identical bytes, so whichever
	// pointer wins the swap is correct.
	memo atomic.Pointer[txMemo]
}

// txMemo holds the lazily computed serialization and ID.
type txMemo struct {
	raw []byte
	id  Hash
}

// memoized returns the cached serialization/ID, computing it on first
// call.
func (tx *Tx) memoized() *txMemo {
	if m := tx.memo.Load(); m != nil {
		return m
	}
	raw := tx.encode()
	m := &txMemo{raw: raw, id: Hash(bccrypto.DoubleSHA256(raw))}
	tx.memo.Store(m)
	return m
}

// Serialization limits.
const (
	maxTxSize   = 100_000
	maxScriptIO = script.MaxScriptSize
)

// Serialization errors.
var (
	ErrTxTooLarge  = errors.New("chain: transaction too large")
	ErrTxTruncated = errors.New("chain: truncated transaction encoding")
)

// Serialize encodes the transaction in the canonical binary form its ID is
// computed over. The encoding is memoized; the returned slice is a copy
// the caller may retain or modify.
func (tx *Tx) Serialize() []byte {
	raw := tx.memoized().raw
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// SerializedSize returns the canonical encoding length without copying.
func (tx *Tx) SerializedSize() int { return len(tx.memoized().raw) }

// encode performs the actual canonical encoding.
func (tx *Tx) encode() []byte {
	var buf bytes.Buffer
	writeInt64(&buf, int64(tx.Version))
	writeVarInt(&buf, uint64(len(tx.Inputs)))
	for _, in := range tx.Inputs {
		buf.Write(in.Prev.TxID[:])
		writeUint32(&buf, in.Prev.Index)
		writeVarBytes(&buf, in.Unlock)
	}
	writeVarInt(&buf, uint64(len(tx.Outputs)))
	for _, out := range tx.Outputs {
		writeUint64(&buf, out.Value)
		writeVarBytes(&buf, out.Lock)
	}
	writeInt64(&buf, tx.LockTime)
	return buf.Bytes()
}

// DeserializeTx parses a transaction produced by Serialize.
func DeserializeTx(data []byte) (*Tx, error) {
	if len(data) > maxTxSize {
		return nil, ErrTxTooLarge
	}
	r := bytes.NewReader(data)
	tx, err := readTx(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after transaction", r.Len())
	}
	return tx, nil
}

func readTx(r *bytes.Reader) (*Tx, error) {
	var tx Tx
	v, err := readInt64(r)
	if err != nil {
		return nil, err
	}
	tx.Version = int32(v)
	nIn, err := readVarInt(r)
	if err != nil {
		return nil, err
	}
	if nIn > 10_000 {
		return nil, ErrTxTooLarge
	}
	tx.Inputs = make([]TxIn, nIn)
	for i := range tx.Inputs {
		if _, err := io.ReadFull(r, tx.Inputs[i].Prev.TxID[:]); err != nil {
			return nil, ErrTxTruncated
		}
		idx, err := readUint32(r)
		if err != nil {
			return nil, err
		}
		tx.Inputs[i].Prev.Index = idx
		unlock, err := readVarBytes(r, maxScriptIO)
		if err != nil {
			return nil, err
		}
		tx.Inputs[i].Unlock = unlock
	}
	nOut, err := readVarInt(r)
	if err != nil {
		return nil, err
	}
	if nOut > 10_000 {
		return nil, ErrTxTooLarge
	}
	tx.Outputs = make([]TxOut, nOut)
	for i := range tx.Outputs {
		val, err := readUint64(r)
		if err != nil {
			return nil, err
		}
		tx.Outputs[i].Value = val
		lock, err := readVarBytes(r, maxScriptIO)
		if err != nil {
			return nil, err
		}
		tx.Outputs[i].Lock = lock
	}
	lt, err := readInt64(r)
	if err != nil {
		return nil, err
	}
	tx.LockTime = lt
	return &tx, nil
}

// ID returns the transaction hash. The hash is memoized; see the Tx
// immutability contract.
func (tx *Tx) ID() Hash {
	return tx.memoized().id
}

// IsCoinbase reports whether the transaction is a block subsidy: a single
// input with a zero previous outpoint.
func (tx *Tx) IsCoinbase() bool {
	return len(tx.Inputs) == 1 &&
		tx.Inputs[0].Prev.TxID.IsZero() &&
		tx.Inputs[0].Prev.Index == coinbaseIndex
}

const coinbaseIndex = 0xffffffff

// SigHash computes the digest an input's signature commits to
// (SIGHASH_ALL): the transaction with every unlocking script cleared and
// the signed input's slot replaced by the previous output's locking
// script, plus the input index.
func (tx *Tx) SigHash(inputIndex int, prevLock script.Script) Hash {
	clone := Tx{
		Version:  tx.Version,
		Inputs:   make([]TxIn, len(tx.Inputs)),
		Outputs:  tx.Outputs,
		LockTime: tx.LockTime,
	}
	for i, in := range tx.Inputs {
		clone.Inputs[i].Prev = in.Prev
		if i == inputIndex {
			clone.Inputs[i].Unlock = prevLock
		}
	}
	var buf bytes.Buffer
	buf.Write(clone.encode())
	writeUint32(&buf, uint32(inputIndex))
	return Hash(bccrypto.DoubleSHA256(buf.Bytes()))
}

// sigContext adapts a (tx, input) pair to script.Context.
type sigContext struct {
	tx       *Tx
	input    int
	prevLock script.Script
}

var _ script.Context = sigContext{}

// CheckSig implements script.Context.
func (c sigContext) CheckSig(sig, pubKey []byte) bool {
	digest := c.tx.SigHash(c.input, c.prevLock)
	return bccrypto.VerifyECDigest(pubKey, digest[:], sig)
}

// LockTime implements script.Context.
func (c sigContext) LockTime() int64 { return c.tx.LockTime }

// VerifyInput runs the script pair for one input.
func (tx *Tx) VerifyInput(inputIndex int, prevLock script.Script) error {
	if inputIndex < 0 || inputIndex >= len(tx.Inputs) {
		return fmt.Errorf("chain: input index %d out of range", inputIndex)
	}
	ctx := sigContext{tx: tx, input: inputIndex, prevLock: prevLock}
	if err := script.Verify(tx.Inputs[inputIndex].Unlock, prevLock, ctx); err != nil {
		return fmt.Errorf("input %d: %w", inputIndex, err)
	}
	return nil
}

// Binary encoding helpers (little-endian fixed ints, Bitcoin-style
// varints).

func writeUint32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeUint64(w *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeInt64(w *bytes.Buffer, v int64) { writeUint64(w, uint64(v)) }

func writeVarInt(w *bytes.Buffer, v uint64) {
	switch {
	case v < 0xfd:
		w.WriteByte(byte(v))
	case v <= 0xffff:
		w.WriteByte(0xfd)
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(v))
		w.Write(b[:])
	case v <= 0xffffffff:
		w.WriteByte(0xfe)
		writeUint32(w, uint32(v))
	default:
		w.WriteByte(0xff)
		writeUint64(w, v)
	}
}

func writeVarBytes(w *bytes.Buffer, b []byte) {
	writeVarInt(w, uint64(len(b)))
	w.Write(b)
}

func readUint32(r *bytes.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, ErrTxTruncated
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readUint64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, ErrTxTruncated
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readInt64(r *bytes.Reader) (int64, error) {
	v, err := readUint64(r)
	return int64(v), err
}

func readVarInt(r *bytes.Reader) (uint64, error) {
	first, err := r.ReadByte()
	if err != nil {
		return 0, ErrTxTruncated
	}
	switch first {
	case 0xfd:
		var b [2]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, ErrTxTruncated
		}
		return uint64(binary.LittleEndian.Uint16(b[:])), nil
	case 0xfe:
		v, err := readUint32(r)
		return uint64(v), err
	case 0xff:
		return readUint64(r)
	default:
		return uint64(first), nil
	}
}

func readVarBytes(r *bytes.Reader, maxLen int) ([]byte, error) {
	n, err := readVarInt(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(maxLen) {
		return nil, fmt.Errorf("chain: var bytes length %d exceeds %d", n, maxLen)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, ErrTxTruncated
	}
	return out, nil
}
