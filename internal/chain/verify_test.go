package chain

import (
	"fmt"
	"testing"

	"bcwan/internal/script"
)

// trueLock and falseLock are minimal locking scripts whose outcome does
// not depend on signatures, so verifier mechanics can be tested without
// wallets.
var (
	trueLock  = script.NewBuilder().AddInt64(1).Script()
	falseLock = script.NewBuilder().AddInt64(0).Script()
)

// verifierTestTx builds an n-input transaction spending distinct fake
// outpoints.
func verifierTestTx(n int) *Tx {
	tx := &Tx{Version: 1, Outputs: []TxOut{{Value: 1, Lock: trueLock}}}
	for i := 0; i < n; i++ {
		tx.Inputs = append(tx.Inputs, TxIn{Prev: OutPoint{TxID: Hash{0xaa, byte(i)}, Index: uint32(i)}})
	}
	return tx
}

func jobsFor(tx *Tx, lock script.Script) []verifyJob {
	jobs := make([]verifyJob, len(tx.Inputs))
	for i := range tx.Inputs {
		jobs[i] = verifyJob{tx: tx, txIdx: 0, inputIdx: i, lock: lock}
	}
	return jobs
}

func TestVerifyJobsSequentialAndParallelAgree(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		v := NewVerifier(workers, nil)
		if err := v.verifyJobs(jobsFor(verifierTestTx(17), trueLock)); err != nil {
			t.Fatalf("workers=%d: valid jobs rejected: %v", workers, err)
		}
		if err := v.verifyJobs(jobsFor(verifierTestTx(17), falseLock)); err == nil {
			t.Fatalf("workers=%d: failing jobs accepted", workers)
		}
	}
}

func TestVerifyJobsNilVerifier(t *testing.T) {
	var v *Verifier
	if err := v.verifyJobs(jobsFor(verifierTestTx(3), trueLock)); err != nil {
		t.Fatalf("nil verifier rejected valid jobs: %v", err)
	}
	if err := v.verifyJobs(nil); err != nil {
		t.Fatalf("nil verifier on no jobs: %v", err)
	}
}

func TestVerifyJobsUsesCache(t *testing.T) {
	cache := NewSigCache(16)
	v := NewVerifier(2, cache)
	tx := verifierTestTx(4)
	if err := v.verifyJobs(jobsFor(tx, trueLock)); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 4 {
		t.Fatalf("cache entries = %d, want 4", cache.Len())
	}
	for _, j := range jobsFor(tx, trueLock) {
		if !cache.Contains(j.key()) {
			t.Fatalf("input %d not cached", j.inputIdx)
		}
	}
	// A different lock script must miss: the cache key commits to the
	// locking script, not just the txid/input pair.
	if cache.Contains(verifyJob{tx: tx, inputIdx: 0, lock: falseLock}.key()) {
		t.Fatal("cache hit for a different locking script")
	}
}

func TestSigCacheLRUEviction(t *testing.T) {
	cache := NewSigCache(3)
	keys := make([]sigCacheKey, 5)
	for i := range keys {
		keys[i] = sigCacheKey{TxID: Hash{byte(i + 1)}, Index: 0, Lock: Hash{0xff}}
	}
	cache.Add(keys[0])
	cache.Add(keys[1])
	cache.Add(keys[2])
	// Refresh key 0 so key 1 is now the oldest.
	if !cache.Contains(keys[0]) {
		t.Fatal("key 0 missing")
	}
	cache.Add(keys[3])
	if cache.Contains(keys[1]) {
		t.Fatal("least recently used entry not evicted")
	}
	for _, want := range []int{0, 2, 3} {
		if !cache.Contains(keys[want]) {
			t.Fatalf("key %d evicted unexpectedly", want)
		}
	}
	if cache.Len() != 3 {
		t.Fatalf("len = %d, want 3", cache.Len())
	}
}

func TestSigCacheDisabled(t *testing.T) {
	for _, cache := range []*SigCache{nil, NewSigCache(0)} {
		cache.Add(sigCacheKey{TxID: Hash{1}})
		if cache.Contains(sigCacheKey{TxID: Hash{1}}) {
			t.Fatal("disabled cache stored an entry")
		}
		if cache.Len() != 0 {
			t.Fatal("disabled cache nonzero length")
		}
	}
}

// TestRunParallelReportsLowestFailure checks that when exactly one job
// fails, the reported error names that job's block position, keeping
// rejection messages stable regardless of worker scheduling.
func TestRunParallelReportsLowestFailure(t *testing.T) {
	good := verifierTestTx(8)
	bad := verifierTestTx(1)
	jobs := []verifyJob{{tx: bad, txIdx: 0, inputIdx: 0, lock: falseLock}}
	for i := range good.Inputs {
		jobs = append(jobs, verifyJob{tx: good, txIdx: 1, inputIdx: i, lock: trueLock})
	}
	err := runParallel(jobs, 4, nil)
	if err == nil {
		t.Fatal("failing job set accepted")
	}
	want := fmt.Sprintf("tx 0 (%s)", bad.ID())
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("error %q does not lead with %q", got, want)
	}
}

// TestConnectTxVerifiedMatchesConnectTx pins the compatibility contract:
// the verifier-threaded path and the legacy path agree on both fee and
// rejection for the same transaction.
func TestConnectTxVerifiedMatchesConnectTx(t *testing.T) {
	utxo := NewUTXOSet()
	fund := &Tx{
		Version: 1,
		Inputs:  []TxIn{{Prev: OutPoint{Index: coinbaseIndex}}},
		Outputs: []TxOut{{Value: 100, Lock: trueLock}, {Value: 50, Lock: falseLock}},
	}
	if err := utxo.ApplyTx(fund, 0); err != nil {
		t.Fatal(err)
	}
	spendGood := &Tx{
		Version: 1,
		Inputs:  []TxIn{{Prev: OutPoint{TxID: fund.ID(), Index: 0}}},
		Outputs: []TxOut{{Value: 90, Lock: trueLock}},
	}
	spendBad := &Tx{
		Version: 1,
		Inputs:  []TxIn{{Prev: OutPoint{TxID: fund.ID(), Index: 1}}},
		Outputs: []TxOut{{Value: 40, Lock: trueLock}},
	}
	v := NewVerifier(4, NewSigCache(8))
	for _, tc := range []struct {
		name string
		tx   *Tx
	}{{"good", spendGood}, {"bad", spendBad}} {
		feeA, errA := ConnectTx(utxo.Clone(), tc.tx, 1, 0, true)
		feeB, errB := ConnectTxVerified(utxo.Clone(), tc.tx, 1, 0, true, v)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: legacy err %v, verified err %v", tc.name, errA, errB)
		}
		if feeA != feeB {
			t.Fatalf("%s: fee %d vs %d", tc.name, feeA, feeB)
		}
	}
}
