package chain_test

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/telemetry"
	"bcwan/internal/wallet"
)

// forkBlockOn builds a coinbase-only block on parent, signed by w. The
// nonce lands in the coinbase unlock script so every fork block has a
// unique transaction ID even when different branches mint at the same
// height.
func forkBlockOn(tb testing.TB, parent *chain.Block, w *wallet.Wallet, at time.Time, nonce int64) *chain.Block {
	tb.Helper()
	coinbase := &chain.Tx{
		Inputs: []chain.TxIn{{
			Prev: chain.OutPoint{Index: 0xffffffff},
			Unlock: script.NewBuilder().
				AddInt64(parent.Header.Height + 1).
				AddInt64(nonce).
				AddData([]byte("fork")).Script(),
		}},
		Outputs: []chain.TxOut{{
			Value: chain.DefaultParams().CoinbaseReward,
			Lock:  script.PayToPubKeyHash(w.PubKeyHash()),
		}},
	}
	b := &chain.Block{
		Header: chain.Header{
			Version:    1,
			PrevBlock:  parent.ID(),
			MerkleRoot: chain.MerkleRoot([]*chain.Tx{coinbase}),
			Time:       at.UnixNano(),
			Height:     parent.Header.Height + 1,
		},
		Txs: []*chain.Tx{coinbase},
	}
	if err := b.Header.Sign(w.Key(), rand.Reader); err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestRandomForkReorgMatchesReplay drives seeded random sequences of
// best-branch extensions, losing side branches and overtaking forks, and
// after every step cross-checks the incrementally maintained state (UTXO
// set via undo journals, tx/spender indexes) against a full replay from
// genesis. This is the paper-level safety property of the undo machinery:
// disconnect(connect(S)) == S, byte for byte, under arbitrary reorgs.
func TestRandomForkReorgMatchesReplay(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := mrand.New(mrand.NewSource(seed))
			h := newHarness(t, chain.DefaultParams())
			var nonce int64
			for step := 0; step < 30; step++ {
				switch rng.Intn(4) {
				case 0, 1:
					// Extend the best branch, sometimes carrying a payment
					// so blocks mutate more than coinbase outputs.
					if rng.Intn(2) == 0 {
						amount := uint64(50 + rng.Intn(300))
						fee := uint64(1 + rng.Intn(4))
						tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), amount, fee)
						if err == nil {
							// Conflicts with stale pooled spends are expected
							// after reorgs; admission failure is fine.
							_ = h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params)
						}
					}
					h.mine()
				case 2:
					// A side branch that ties but never overtakes: no reorg.
					tip := h.chain.Tip()
					back := int64(1 + rng.Intn(2))
					forkH := tip.Header.Height - back
					if forkH < 0 {
						forkH = 0
						back = tip.Header.Height
					}
					parent, _ := h.chain.BlockAt(forkH)
					for j := int64(0); j < back; j++ {
						nonce++
						b := forkBlockOn(t, parent, h.minerW, h.now, nonce)
						if err := h.chain.AddBlock(b); err != nil {
							t.Fatalf("step %d side block: %v", step, err)
						}
						parent = b
					}
					if h.chain.Tip() != tip {
						t.Fatalf("step %d: tie caused a reorg", step)
					}
				case 3:
					// An overtaking fork: disconnect depth blocks, connect
					// depth+1.
					tip := h.chain.Tip()
					depth := int64(1 + rng.Intn(3))
					forkH := tip.Header.Height - depth
					if forkH < 0 {
						forkH = 0
						depth = tip.Header.Height
					}
					parent, _ := h.chain.BlockAt(forkH)
					for j := int64(0); j <= depth; j++ {
						nonce++
						b := forkBlockOn(t, parent, h.minerW, h.now, nonce)
						if err := h.chain.AddBlock(b); err != nil {
							t.Fatalf("step %d fork block: %v", step, err)
						}
						parent = b
					}
					if h.chain.Tip().ID() != parent.ID() {
						t.Fatalf("step %d: longer branch did not become best", step)
					}
				}
				if err := h.chain.CheckConsistency(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		})
	}
}

// TestReorgCostIndependentOfChainLength pins the incremental behavior
// deterministically: a depth-2 reorg disconnects exactly 2 blocks and
// connects exactly 3, whatever the chain length — where the seed's
// replay-based reorg rebuilt the whole branch from genesis. Wall-clock
// scaling lives in BenchmarkReorg; this asserts the state-transition
// counts that make it hold.
func TestReorgCostIndependentOfChainLength(t *testing.T) {
	for _, chainLen := range []int{50, 300} {
		chainLen := chainLen
		t.Run(fmt.Sprintf("chain%d", chainLen), func(t *testing.T) {
			h := newHarness(t, chain.DefaultParams())
			for i := 0; i < chainLen; i++ {
				h.mine()
			}
			reg := telemetry.NewRegistry()
			h.chain.Instrument(reg)

			tip := h.chain.Tip()
			parent, _ := h.chain.BlockAt(tip.Header.Height - 2)
			var nonce int64
			for j := 0; j < 3; j++ {
				nonce++
				b := forkBlockOn(t, parent, h.minerW, h.now, nonce)
				if err := h.chain.AddBlock(b); err != nil {
					t.Fatal(err)
				}
				parent = b
			}
			if h.chain.Tip().ID() != parent.ID() {
				t.Fatal("reorg did not switch branches")
			}

			var disconnected, depth float64
			for _, m := range reg.Snapshot() {
				switch m.Name {
				case "bcwan_chain_blocks_disconnected_total":
					disconnected = m.Value
				case "bcwan_chain_reorg_depth":
					depth = m.Value
				}
			}
			if disconnected != 2 {
				t.Fatalf("chain %d: disconnected %v blocks in a depth-2 reorg, want exactly 2", chainLen, disconnected)
			}
			if depth != 2 {
				t.Fatalf("chain %d: reorg depth %v, want 2", chainLen, depth)
			}
			if err := h.chain.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// benchChain builds a coinbase-only chain of the given length.
func benchChain(b *testing.B, blocks int) (*chain.Chain, *wallet.Wallet, time.Time) {
	b.Helper()
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{minerW.PubKeyHash(): 1_000_000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		b.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	miner := chain.NewMiner(minerW.Key(), c, chain.NewMempool(), rand.Reader)
	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < blocks; i++ {
		now = now.Add(15 * time.Second)
		if _, err := miner.Mine(now); err != nil {
			b.Fatal(err)
		}
	}
	return c, minerW, now
}

// BenchmarkReorg measures one depth-2 reorganization (2 disconnects +
// 3 connects) at different chain lengths. With undo journals the cost is
// O(depth): the chain=1000 rows must land within the same order of
// magnitude as chain=100 (the CI acceptance bound is 5×), where a
// replay-from-genesis reorg would scale linearly with chain length.
func BenchmarkReorg(b *testing.B) {
	for _, chainLen := range []int{100, 1000} {
		chainLen := chainLen
		b.Run(fmt.Sprintf("chain=%d/depth=2", chainLen), func(b *testing.B) {
			c, minerW, now := benchChain(b, chainLen)
			var nonce int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tip := c.Tip()
				parent, _ := c.BlockAt(tip.Header.Height - 2)
				for j := 0; j < 3; j++ {
					nonce++
					blk := forkBlockOn(b, parent, minerW, now, nonce)
					if err := c.AddBlock(blk); err != nil {
						b.Fatal(err)
					}
					parent = blk
				}
			}
		})
	}
}
