package chain_test

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

// bestHeaders returns pointers to the best-branch headers from height
// from through to, inclusive.
func bestHeaders(t *testing.T, c *chain.Chain, from, to int64) []*chain.Header {
	t.Helper()
	var out []*chain.Header
	for h := from; h <= to; h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			t.Fatalf("no block at height %d", h)
		}
		out = append(out, &b.Header)
	}
	return out
}

func TestHeaderSerializeRoundTrip(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	b := h.mine()
	data := b.Header.Serialize()
	got, err := chain.DeserializeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != b.ID() {
		t.Fatalf("round-trip ID = %s, want %s", got.ID(), b.ID())
	}
	if _, err := chain.DeserializeHeader(append(data, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestHeaderChainConnect(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	for i := 0; i < 5; i++ {
		h.mine()
	}
	hc := chain.NewHeaderChain(h.chain.Genesis(), [][]byte{h.minerW.PublicBytes()})
	batch := bestHeaders(t, h.chain, 1, 5)
	added, err := hc.Connect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 || hc.Height() != 5 {
		t.Fatalf("added %d, height %d", added, hc.Height())
	}
	if hc.TipID() != h.chain.Tip().ID() {
		t.Fatal("spine tip does not match chain tip")
	}
	// Re-connecting the same batch is a no-op.
	if added, err = hc.Connect(batch); err != nil || added != 0 {
		t.Fatalf("reconnect: added %d, err %v", added, err)
	}
	// The locator starts at the tip and ends at genesis.
	loc := hc.Locator()
	if loc[0] != hc.TipID() || loc[len(loc)-1] != h.chain.Genesis().ID() {
		t.Fatal("locator endpoints wrong")
	}
}

func TestHeaderChainRejectsUnauthorizedAndUnsigned(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	outsider, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := buildOn(nil, h.chain.Genesis(), h.now.Add(time.Minute), outsider)
	if err != nil {
		t.Fatal(err)
	}
	hc := chain.NewHeaderChain(h.chain.Genesis(), [][]byte{h.minerW.PublicBytes()})
	if _, err := hc.Connect([]*chain.Header{&b1.Header}); !errors.Is(err, chain.ErrBadHeaderSig) {
		t.Fatalf("unauthorized miner: err = %v", err)
	}
	// An authorized header with a corrupted signature.
	b2 := h.mine()
	bad := b2.Header
	bad.Signature = append([]byte(nil), bad.Signature...)
	bad.Signature[0] ^= 0xff
	hc2 := chain.NewHeaderChain(h.chain.Genesis(), [][]byte{h.minerW.PublicBytes()})
	if _, err := hc2.Connect([]*chain.Header{&bad}); !errors.Is(err, chain.ErrBadHeaderSig) {
		t.Fatalf("bad signature: err = %v", err)
	}
	// A disconnected header (wrong height).
	skip := b2.Header
	skip.Height = 7
	if _, err := hc2.Connect([]*chain.Header{&skip}); !errors.Is(err, chain.ErrHeaderDisconnected) {
		t.Fatalf("disconnected: err = %v", err)
	}
}

func TestHeaderChainForkTruncates(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	forkW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b1 := h.mine()
	b2 := h.mine()
	miners := [][]byte{h.minerW.PublicBytes(), forkW.PublicBytes()}
	hc := chain.NewHeaderChain(h.chain.Genesis(), miners)
	if _, err := hc.Connect([]*chain.Header{&b1.Header, &b2.Header}); err != nil {
		t.Fatal(err)
	}
	// A competing branch forking at height 1 and reaching height 3.
	f1, err := buildOn(nil, h.chain.Genesis(), h.now.Add(time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := buildOn(nil, f1, h.now.Add(2*time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := buildOn(nil, f2, h.now.Add(3*time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Connect([]*chain.Header{&f1.Header, &f2.Header, &f3.Header}); err != nil {
		t.Fatal(err)
	}
	if hc.Height() != 3 || hc.TipID() != f3.ID() {
		t.Fatalf("after fork: height %d tip %s", hc.Height(), hc.TipID())
	}
	if id, _ := hc.IDAt(1); id != f1.ID() {
		t.Fatal("height 1 not replaced by the fork")
	}
}

func TestHeadersAfterLocator(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	for i := 0; i < 8; i++ {
		h.mine()
	}
	// A joiner synced to height 3 asks for more.
	hc := chain.NewHeaderChain(h.chain.Genesis(), [][]byte{h.minerW.PublicBytes()})
	if _, err := hc.Connect(bestHeaders(t, h.chain, 1, 3)); err != nil {
		t.Fatal(err)
	}
	got := h.chain.HeadersAfter(hc.Locator(), 100)
	if len(got) != 5 || got[0].Height != 4 || got[len(got)-1].Height != 8 {
		t.Fatalf("headers after locator: %d headers, first %d", len(got), got[0].Height)
	}
	// Max caps the batch.
	got = h.chain.HeadersAfter(hc.Locator(), 2)
	if len(got) != 2 || got[0].Height != 4 {
		t.Fatalf("capped batch: %d headers", len(got))
	}
	// An unknown locator restarts from height 1.
	got = h.chain.HeadersAfter([]chain.Hash{{0xde, 0xad}}, 100)
	if len(got) != 8 || got[0].Height != 1 {
		t.Fatalf("unknown locator: %d headers, first %d", len(got), got[0].Height)
	}
}

func TestChainTips(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	forkW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	h.chain.AuthorizeMiner(forkW.PublicBytes())
	h.mine()
	h.mine()
	// A one-block side branch off height 1.
	parent, _ := h.chain.BlockAt(1)
	side, err := buildOn(nil, parent, h.now.Add(time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.chain.AddBlock(side); err != nil {
		t.Fatal(err)
	}
	tips := h.chain.Tips()
	if len(tips) != 2 {
		t.Fatalf("tips = %d, want 2", len(tips))
	}
	if !tips[0].Active || tips[0].Height != 2 || tips[0].BranchLen != 0 {
		t.Fatalf("active tip wrong: %+v", tips[0])
	}
	if tips[1].Active || tips[1].ID != side.ID() || tips[1].BranchLen != 1 {
		t.Fatalf("side tip wrong: %+v", tips[1])
	}
}

func TestSnapshotCommitmentRoundTrip(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	b := h.mine()
	ser := h.chain.UTXO().SerializeUTXO()
	sc := &chain.SnapshotCommitment{
		Version:  1,
		Height:   1,
		BlockID:  b.ID(),
		UTXOHash: chain.SnapshotHash(ser),
		UTXOSize: int64(len(ser)),
	}
	if err := sc.Sign(h.minerW.Key(), rand.Reader); err != nil {
		t.Fatal(err)
	}
	if !sc.VerifySignature() {
		t.Fatal("fresh commitment fails verification")
	}
	got, err := chain.DeserializeSnapshotCommitment(sc.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !got.VerifySignature() || got.BlockID != sc.BlockID || got.UTXOHash != sc.UTXOHash {
		t.Fatal("round-trip commitment differs")
	}
	// Any tampered field invalidates the signature.
	tampered := *got
	tampered.Height++
	if tampered.VerifySignature() {
		t.Fatal("tampered height verified")
	}
	tampered = *got
	tampered.UTXOHash[0] ^= 1
	if tampered.VerifySignature() {
		t.Fatal("tampered hash verified")
	}
	if !h.chain.IsAuthorizedMiner(got.MinerPubKey) {
		t.Fatal("signer not recognized as authorized")
	}
}

func TestStateAtMatchesHistory(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	var want []*chain.UTXOSet
	want = append(want, h.chain.UTXO()) // height 0
	for i := 0; i < 4; i++ {
		tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 50+uint64(i), 3)
		if err != nil {
			t.Fatal(err)
		}
		h.accept(tx)
		h.mine()
		want = append(want, h.chain.UTXO())
	}
	for height, w := range want {
		got, err := h.chain.StateAt(int64(height))
		if err != nil {
			t.Fatalf("StateAt(%d): %v", height, err)
		}
		if !got.Equal(w) {
			t.Fatalf("StateAt(%d) diverges from history", height)
		}
	}
	if _, err := h.chain.StateAt(99); err == nil {
		t.Fatal("StateAt above tip accepted")
	}
}

func TestInitFromSnapshotAndTail(t *testing.T) {
	src := newHarness(t, chain.DefaultParams())
	for i := 0; i < 6; i++ {
		tx, err := src.alice.BuildPayment(src.chain.UTXO(), src.bob.PubKeyHash(), 40, 2)
		if err != nil {
			t.Fatal(err)
		}
		src.accept(tx)
		src.mine()
	}
	const horizon = 4
	utxoAtHorizon, err := src.chain.StateAt(horizon)
	if err != nil {
		t.Fatal(err)
	}

	joiner, err := chain.New(src.params, src.chain.Genesis())
	if err != nil {
		t.Fatal(err)
	}
	joiner.AuthorizeMiner(src.minerW.PublicBytes())
	if err := joiner.InitFromSnapshot(bestHeaders(t, src.chain, 1, horizon), utxoAtHorizon); err != nil {
		t.Fatal(err)
	}
	if joiner.Height() != horizon || joiner.PruneBase() != horizon {
		t.Fatalf("after install: height %d, base %d", joiner.Height(), joiner.PruneBase())
	}
	// A second install must refuse.
	if err := joiner.InitFromSnapshot(bestHeaders(t, src.chain, 1, horizon), utxoAtHorizon.Clone()); !errors.Is(err, chain.ErrNotEmpty) {
		t.Fatalf("double install: err = %v", err)
	}
	// The tail connects with full validation on top of the snapshot.
	for hh := int64(horizon + 1); hh <= src.chain.Height(); hh++ {
		b, _ := src.chain.BlockAt(hh)
		if err := joiner.AddBlock(b); err != nil {
			t.Fatalf("tail height %d: %v", hh, err)
		}
	}
	if joiner.Tip().ID() != src.chain.Tip().ID() {
		t.Fatal("joiner tip diverges from source")
	}
	if !joiner.UTXO().Equal(src.chain.UTXO()) {
		t.Fatal("joiner UTXO diverges from source")
	}
	// Tail transactions are indexed; pruned ones are not.
	tailBlock, _ := src.chain.BlockAt(horizon + 1)
	if _, _, ok := joiner.FindTx(tailBlock.Txs[1].ID()); !ok {
		t.Fatal("tail tx missing from index")
	}
	prunedBlock, _ := src.chain.BlockAt(2)
	if _, _, ok := joiner.FindTx(prunedBlock.Txs[1].ID()); ok {
		t.Fatal("pruned tx present in index")
	}
	if err := joiner.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPruneBelowAndPrunedReorgRejected(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	forkW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	h.chain.AuthorizeMiner(forkW.PublicBytes())
	var blocks []*chain.Block
	for i := 0; i < 6; i++ {
		tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 30, 1)
		if err != nil {
			t.Fatal(err)
		}
		h.accept(tx)
		blocks = append(blocks, h.mine())
	}
	prunedTx := blocks[1].Txs[1]

	if err := h.chain.PruneBelow(4); err != nil {
		t.Fatal(err)
	}
	if h.chain.PruneBase() != 4 {
		t.Fatalf("prune base = %d", h.chain.PruneBase())
	}
	stub, _ := h.chain.BlockAt(2)
	if len(stub.Txs) != 0 {
		t.Fatal("pruned block still holds a body")
	}
	if _, _, ok := h.chain.FindTx(prunedTx.ID()); ok {
		t.Fatal("pruned tx still indexed")
	}
	if _, err := h.chain.StateAt(3); err == nil {
		t.Fatal("StateAt below prune base accepted")
	}
	if _, err := h.chain.StateAt(4); err != nil {
		t.Fatalf("StateAt at prune base: %v", err)
	}
	if err := h.chain.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Pruning at or above the tip refuses.
	if err := h.chain.PruneBelow(h.chain.Height()); err == nil {
		t.Fatal("pruning the tip accepted")
	}

	// A longer branch forking at height 2 (below the horizon) must be
	// rejected: the chain cannot unwind pruned state.
	parent, _ := h.chain.BlockAt(2)
	cur := parent
	at := h.now.Add(time.Hour)
	var connectErr error
	for i := 0; i < 6; i++ {
		fb, err := buildOn(nil, cur, at, forkW)
		if err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Hour)
		if err := h.chain.AddBlock(fb); err != nil {
			connectErr = err
			break
		}
		cur = fb
	}
	if !errors.Is(connectErr, chain.ErrPrunedFork) {
		t.Fatalf("pruned-fork reorg: err = %v", connectErr)
	}
	if h.chain.Tip().ID() != blocks[5].ID() {
		t.Fatal("best tip changed despite rejected reorg")
	}
	if err := h.chain.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
