package chain_test

import (
	"crypto/rand"
	"errors"
	"testing"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
)

// These tests exercise the paper's fair exchange (§4.4) end-to-end on the
// chain: the recipient's key-release payment, the gateway's claim that
// discloses eSk, and the buyer's time-locked refund.

type exchangeFixture struct {
	h        *harness
	eKey     *bccrypto.RSA512PrivateKey
	params   script.KeyReleaseParams
	payment  *chain.Tx
	outpoint chain.OutPoint
	prevOut  chain.TxOut
}

func newExchangeFixture(t *testing.T) *exchangeFixture {
	t.Helper()
	h := newHarness(t, chain.DefaultParams())
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// bob is the recipient (buyer), alice plays the gateway.
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: h.alice.PubKeyHash(),
		RefundHeight:      h.chain.Height() + 100,
		BuyerPubKeyHash:   h.bob.PubKeyHash(),
	}
	payment, err := h.bob.BuildKeyReleasePayment(h.chain.UTXO(), params, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(payment)
	h.mine()
	return &exchangeFixture{
		h:        h,
		eKey:     eKey,
		params:   params,
		payment:  payment,
		outpoint: chain.OutPoint{TxID: payment.ID(), Index: 0},
		prevOut:  payment.Outputs[0],
	}
}

func TestFairExchangeClaim(t *testing.T) {
	f := newExchangeFixture(t)
	h := f.h

	claim, err := h.alice.BuildClaim(f.outpoint, f.prevOut, f.eKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(claim)
	h.mine()

	// The gateway received the payment (minus its claim fee).
	if got := h.alice.Balance(h.chain.UTXO()); got != initialFunds+500-5 {
		t.Fatalf("gateway balance = %d, want %d", got, initialFunds+500-5)
	}

	// The recipient can extract eSk from the claim's unlocking script
	// in the chain — the disclosure it paid for.
	confirmed, _, ok := h.chain.FindTx(claim.ID())
	if !ok {
		t.Fatal("claim not found in chain")
	}
	keyBytes, err := script.ExtractClaimedRSAKey(confirmed.Inputs[0].Unlock)
	if err != nil {
		t.Fatal(err)
	}
	revealed, err := bccrypto.UnmarshalRSA512PrivateKey(keyBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !revealed.MatchesPublic(f.eKey.Public()) {
		t.Fatal("revealed key does not match the ephemeral public key")
	}
}

func TestFairExchangeClaimWithWrongKeyRejected(t *testing.T) {
	f := newExchangeFixture(t)
	h := f.h

	wrongKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	claim, err := h.alice.BuildClaim(f.outpoint, f.prevOut, wrongKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mempool.Accept(claim, h.chain.UTXO(), h.chain.Height(), h.params); err == nil {
		t.Fatal("claim with wrong ephemeral key accepted")
	}
}

func TestFairExchangeThirdPartyCannotClaim(t *testing.T) {
	f := newExchangeFixture(t)
	h := f.h

	// bob (who even knows eSk as its creator-side counterpart would
	// not — assume leak) tries to claim the gateway's payment.
	claim, err := h.bob.BuildClaim(f.outpoint, f.prevOut, f.eKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mempool.Accept(claim, h.chain.UTXO(), h.chain.Height(), h.params); err == nil {
		t.Fatal("third party claimed the gateway's payment")
	}
}

func TestFairExchangeRefundBeforeHeightRejected(t *testing.T) {
	f := newExchangeFixture(t)
	h := f.h

	refund, err := h.bob.BuildRefund(f.outpoint, f.prevOut, f.params.RefundHeight, 5)
	if err != nil {
		t.Fatal(err)
	}
	err = h.mempool.Accept(refund, h.chain.UTXO(), h.chain.Height(), h.params)
	if !errors.Is(err, chain.ErrTxNotFinal) {
		t.Fatalf("early refund err = %v, want ErrTxNotFinal", err)
	}
}

func TestFairExchangeRefundAfterHeight(t *testing.T) {
	f := newExchangeFixture(t)
	h := f.h

	for h.chain.Height() < f.params.RefundHeight {
		h.mine()
	}
	refund, err := h.bob.BuildRefund(f.outpoint, f.prevOut, f.params.RefundHeight, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(refund)
	h.mine()

	// Buyer got the locked funds back: initial − 500 − 10 (payment+fee)
	// + 500 − 5 (refund − fee).
	want := uint64(initialFunds) - 10 - 5
	if got := h.bob.Balance(h.chain.UTXO()); got != want {
		t.Fatalf("buyer balance = %d, want %d", got, want)
	}
}

func TestFairExchangeRefundCannotSkipLockTime(t *testing.T) {
	f := newExchangeFixture(t)
	h := f.h

	// A refund built with a dishonestly low LockTime fails the script's
	// CLTV check instead.
	refund, err := h.bob.BuildRefund(f.outpoint, f.prevOut, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mempool.Accept(refund, h.chain.UTXO(), h.chain.Height(), h.params); err == nil {
		t.Fatal("refund with understated lock time accepted")
	}
}

func TestFairExchangeClaimBeatsLateRefund(t *testing.T) {
	// Once the gateway's claim confirms, the refund's outpoint is spent.
	f := newExchangeFixture(t)
	h := f.h

	claim, err := h.alice.BuildClaim(f.outpoint, f.prevOut, f.eKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(claim)
	h.mine()

	for h.chain.Height() < f.params.RefundHeight {
		h.mine()
	}
	refund, err := h.bob.BuildRefund(f.outpoint, f.prevOut, f.params.RefundHeight, 5)
	if err != nil {
		t.Fatal(err)
	}
	err = h.mempool.Accept(refund, h.chain.UTXO(), h.chain.Height(), h.params)
	if !errors.Is(err, chain.ErrMissingUTXO) {
		t.Fatalf("late refund err = %v, want ErrMissingUTXO", err)
	}
}

func TestDoubleSpendRaceUnconfirmedPayment(t *testing.T) {
	// §6: the gateway releases eSk as soon as it sees the (unconfirmed)
	// payment. A malicious recipient replaces the payment with a double
	// spend before it is mined; the gateway's claim then fails.
	f := newExchangeFixtureUnconfirmed(t)
	h := f.h

	// The recipient double-spends the payment's inputs back to itself.
	doubleSpend := &chain.Tx{Version: 1}
	for _, in := range f.payment.Inputs {
		doubleSpend.Inputs = append(doubleSpend.Inputs, chain.TxIn{Prev: in.Prev})
	}
	var inValue uint64
	utxo := h.chain.UTXO()
	for _, in := range f.payment.Inputs {
		entry, ok := utxo.Get(in.Prev)
		if !ok {
			t.Fatal("payment input missing")
		}
		inValue += entry.Out.Value
	}
	doubleSpend.Outputs = []chain.TxOut{{
		Value: inValue - 1,
		Lock:  script.PayToPubKeyHash(h.bob.PubKeyHash()),
	}}
	if err := h.bob.SignP2PKHInputs(doubleSpend, utxo); err != nil {
		t.Fatal(err)
	}

	// The attacker bypasses first-seen policy (e.g. reaches the miner
	// directly).
	h.mempool.ForceReplace(doubleSpend)
	h.mine()

	// The payment never confirmed; the gateway's claim is unspendable.
	if _, _, ok := h.chain.FindTx(f.payment.ID()); ok {
		t.Fatal("payment confirmed despite double spend")
	}
	claim, err := h.alice.BuildClaim(f.outpoint, f.prevOut, f.eKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	err = h.mempool.Accept(claim, h.chain.UTXO(), h.chain.Height(), h.params)
	if !errors.Is(err, chain.ErrMissingUTXO) {
		t.Fatalf("claim err = %v, want ErrMissingUTXO", err)
	}
}

// newExchangeFixtureUnconfirmed leaves the payment in the mempool instead
// of mining it.
func newExchangeFixtureUnconfirmed(t *testing.T) *exchangeFixture {
	t.Helper()
	h := newHarness(t, chain.DefaultParams())
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: h.alice.PubKeyHash(),
		RefundHeight:      h.chain.Height() + 100,
		BuyerPubKeyHash:   h.bob.PubKeyHash(),
	}
	payment, err := h.bob.BuildKeyReleasePayment(h.chain.UTXO(), params, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(payment)
	return &exchangeFixture{
		h:        h,
		eKey:     eKey,
		params:   params,
		payment:  payment,
		outpoint: chain.OutPoint{TxID: payment.ID(), Index: 0},
		prevOut:  payment.Outputs[0],
	}
}

func TestWalletInsufficientFunds(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	_, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), initialFunds*10, 1)
	if err == nil {
		t.Fatal("overdraft accepted")
	}
}
