package chain_test

import (
	"crypto/rand"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/script"
)

// TestParallelSequentialEquivalence feeds the same deterministic mix of
// valid and script-invalid blocks to two chains that differ only in
// VerifyWorkers (0 = the seed's sequential path, 8 = the worker pool)
// and asserts they accept and reject exactly the same blocks and end on
// the same tip with the same UTXO set. This is the Fig. 5 ablation
// guarantee: parallelism changes throughput, never consensus.
func TestParallelSequentialEquivalence(t *testing.T) {
	// Builder harness: constructs the block sequence once.
	h := newHarness(t, chain.DefaultParams())

	newReplay := func(workers int) *chain.Chain {
		params := chain.DefaultParams()
		params.VerifyWorkers = workers
		genesis, err := chain.DeserializeBlock(h.chain.Genesis().Serialize())
		if err != nil {
			t.Fatal(err)
		}
		c, err := chain.New(params, genesis)
		if err != nil {
			t.Fatal(err)
		}
		c.AuthorizeMiner(h.minerW.PublicBytes())
		return c
	}
	seq := newReplay(0)
	par := newReplay(8)

	// feed hands each chain its own fresh deserialized copy, so neither
	// shares memoized tx state with the builder or with the other.
	feed := func(c *chain.Chain, raw []byte) error {
		b, err := chain.DeserializeBlock(raw)
		if err != nil {
			t.Fatal(err)
		}
		return c.AddBlock(b)
	}

	// corruptBlock assembles a signed block at the current tip whose
	// payment carries a bogus signature: structurally valid, header
	// valid, rejected only by script verification.
	corruptBlock := func() []byte {
		tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 77, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt before any hash of tx is taken (memoization contract).
		tx.Inputs[0].Unlock = script.UnlockP2PKH([]byte("bogus"), h.alice.PublicBytes())
		coinbase := sampleCoinbase(h.chain.Height() + 1)
		coinbase.Outputs[0].Value = h.params.CoinbaseReward
		coinbase.Outputs[0].Lock = script.PayToPubKeyHash(h.minerW.PubKeyHash())
		txs := []*chain.Tx{coinbase, tx}
		b := &chain.Block{
			Header: chain.Header{
				Version:    1,
				PrevBlock:  h.chain.Tip().ID(),
				MerkleRoot: chain.MerkleRoot(txs),
				Time:       h.now.Add(time.Minute).UnixNano(),
				Height:     h.chain.Height() + 1,
			},
			Txs: txs,
		}
		if err := b.Header.Sign(h.minerW.Key(), rand.Reader); err != nil {
			t.Fatal(err)
		}
		return b.Serialize()
	}

	// goodBlock advances the builder chain by one mined block carrying
	// two payments, and returns its wire bytes.
	goodBlock := func(i int) []byte {
		a2b, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), uint64(100+i), 5)
		if err != nil {
			t.Fatal(err)
		}
		h.accept(a2b)
		b2a, err := h.bob.BuildPayment(h.chain.UTXO(), h.alice.PubKeyHash(), uint64(40+i), 2)
		if err != nil {
			t.Fatal(err)
		}
		h.accept(b2a)
		return h.mine().Serialize()
	}

	// Deterministic script: true = valid block, false = corrupted.
	pattern := []bool{true, false, true, true, false, true, false, true}
	for i, good := range pattern {
		var raw []byte
		if good {
			raw = goodBlock(i)
		} else {
			raw = corruptBlock()
		}
		errSeq := feed(seq, raw)
		errPar := feed(par, raw)
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("round %d (good=%v): sequential err %v, parallel err %v",
				i, good, errSeq, errPar)
		}
		if good && errSeq != nil {
			t.Fatalf("round %d: valid block rejected: %v", i, errSeq)
		}
		if !good && errSeq == nil {
			t.Fatalf("round %d: corrupted block accepted", i)
		}
		if seq.Tip().ID() != par.Tip().ID() {
			t.Fatalf("round %d: tips diverged", i)
		}
	}

	if seq.Tip().ID() != h.chain.Tip().ID() {
		t.Fatal("replay chains did not follow the builder chain")
	}
	if seq.Height() != par.Height() {
		t.Fatalf("heights diverged: %d vs %d", seq.Height(), par.Height())
	}
	if seq.UTXO().TotalValue() != par.UTXO().TotalValue() {
		t.Fatal("UTXO sets diverged")
	}
	if a, b := h.alice.Balance(seq.UTXO()), h.alice.Balance(par.UTXO()); a != b {
		t.Fatalf("alice balance diverged: %d vs %d", a, b)
	}
}

// TestSigCacheSkipsReverification checks the mempool→block-connect cache
// handoff: after a tx is admitted to the mempool (scripts verified once,
// outcomes cached), connecting the block that includes it hits the cache
// for every input.
func TestSigCacheSkipsReverification(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	h.mempool.UseVerifier(h.chain.Verifier())
	cache := h.chain.Verifier().Cache()
	if cache == nil {
		t.Fatal("chain verifier has no cache")
	}

	tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 250, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx)
	admitted := cache.Len()
	if admitted < len(tx.Inputs) {
		t.Fatalf("cache has %d entries after mempool admission, want >= %d",
			admitted, len(tx.Inputs))
	}
	h.mine()
	// Block connect re-verified nothing that the mempool already checked:
	// only the coinbase (unverified, no lock lookup) could add entries.
	if got := cache.Len(); got != admitted {
		t.Fatalf("cache grew from %d to %d at block connect; payment inputs were re-verified",
			admitted, got)
	}
}
