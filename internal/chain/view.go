package chain

import (
	"fmt"

	"bcwan/internal/script"
)

// UTXOReader is the read side of a UTXO state: the full set and the
// copy-on-write overlay both implement it, and validation
// (ConnectTxVerified and friends) only ever needs this much.
type UTXOReader interface {
	Get(op OutPoint) (UTXOEntry, bool)
}

var (
	_ UTXOReader = (*UTXOSet)(nil)
	_ UTXOReader = (*UTXOView)(nil)
)

// UTXOView is a lightweight copy-on-write overlay on a base UTXO state:
// spends and creations land in two small maps sized by the overlaid
// transactions, never by the base set. The mempool uses it to validate
// chained unconfirmed spends and the miner to assemble block templates
// — both previously deep-cloned the full set per call.
//
// The base must not be mutated for the lifetime of the view (hold it
// inside Chain.ReadState, or use a snapshot).
type UTXOView struct {
	base    UTXOReader
	spent   map[OutPoint]bool
	created map[OutPoint]UTXOEntry
}

// NewUTXOView returns an empty overlay over base.
func NewUTXOView(base UTXOReader) *UTXOView {
	return &UTXOView{
		base:    base,
		spent:   make(map[OutPoint]bool),
		created: make(map[OutPoint]UTXOEntry),
	}
}

// Get implements UTXOReader: overlay creations win, overlay spends
// shadow the base, anything else falls through.
func (v *UTXOView) Get(op OutPoint) (UTXOEntry, bool) {
	if e, ok := v.created[op]; ok {
		return e, true
	}
	if v.spent[op] {
		return UTXOEntry{}, false
	}
	return v.base.Get(op)
}

// ApplyTx spends the transaction's inputs and creates its outputs in
// the overlay, mirroring UTXOSet.ApplyTx exactly (OP_RETURN outputs are
// skipped, duplicate outpoints rejected). The base is never touched.
func (v *UTXOView) ApplyTx(tx *Tx, height int64) error {
	if !tx.IsCoinbase() {
		for _, in := range tx.Inputs {
			if _, ok := v.Get(in.Prev); !ok {
				return fmt.Errorf("%w: %s", ErrMissingUTXO, in.Prev)
			}
		}
		for _, in := range tx.Inputs {
			delete(v.created, in.Prev)
			v.spent[in.Prev] = true
		}
	}
	id := tx.ID()
	for i, out := range tx.Outputs {
		if script.Classify(out.Lock) == script.ClassOpReturn {
			continue
		}
		op := OutPoint{TxID: id, Index: uint32(i)}
		if _, ok := v.Get(op); ok {
			return fmt.Errorf("%w: %s", ErrDuplicateUTXO, op)
		}
		v.created[op] = UTXOEntry{Out: out, Height: height, Coinbase: tx.IsCoinbase()}
	}
	return nil
}
