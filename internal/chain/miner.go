package chain

import (
	"fmt"
	"io"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/script"
	"bcwan/internal/telemetry"
)

// Miner builds and signs blocks from mempool contents. In the paper's
// deployment a single master node mines (mining is disabled on the
// PlanetLab gateways); the proof-of-authority header signature reproduces
// that trust model.
type Miner struct {
	key     *bccrypto.ECKey
	chain   *Chain
	mempool *Mempool
	random  io.Reader
	metrics *minerMetrics
}

// Instrument registers the miner's metrics in reg (blocks mined and
// block-assembly latency). Call once, before mining starts; a nil
// registry is a no-op.
func (m *Miner) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.metrics = newMinerMetrics(reg)
}

// NewMiner returns a miner minting to the given key.
func NewMiner(key *bccrypto.ECKey, c *Chain, pool *Mempool, random io.Reader) *Miner {
	return &Miner{key: key, chain: c, mempool: pool, random: random}
}

// BuildBlock assembles, validates and signs the next block at the given
// timestamp without adding it to the chain.
func (m *Miner) BuildBlock(now time.Time) (*Block, error) {
	var start time.Time
	if m.metrics != nil {
		start = time.Now()
	}
	params := m.chain.Params()
	verifier := m.chain.Verifier()
	candidates := m.mempool.Select(params.MaxBlockTxs - 1)

	// Re-validate candidates against the current view, dropping any that
	// became unspendable (e.g. conflicting block arrived since Accept).
	// A copy-on-write overlay held under the chain's read lock replaces
	// the old full-set clone, so template assembly costs O(template txs)
	// regardless of UTXO size.
	var tip *Block
	var height int64
	var fees uint64
	var txs []*Tx
	m.chain.ReadState(func(t *Block, utxo UTXOReader) {
		tip = t
		height = t.Header.Height + 1
		view := NewUTXOView(utxo)
		txs = make([]*Tx, 0, len(candidates)+1)
		txs = append(txs, nil) // coinbase placeholder
		for _, tx := range candidates {
			fee, err := ConnectTxVerified(view, tx, height, params.CoinbaseMaturity, params.VerifyScripts, verifier)
			if err != nil {
				continue
			}
			if err := view.ApplyTx(tx, height); err != nil {
				continue
			}
			fees += fee
			txs = append(txs, tx)
		}
	})

	hash := m.key.PubKeyHash()
	coinbase := &Tx{
		Inputs: []TxIn{{
			Prev: OutPoint{Index: coinbaseIndex},
			// Unique per height so coinbase IDs never collide.
			Unlock: script.NewBuilder().AddInt64(height).Script(),
		}},
		Outputs: []TxOut{{
			Value: params.CoinbaseReward + fees,
			Lock:  script.PayToPubKeyHash(hash),
		}},
	}
	txs[0] = coinbase

	b := &Block{
		Header: Header{
			Version:    1,
			PrevBlock:  tip.ID(),
			MerkleRoot: MerkleRoot(txs),
			Time:       now.UnixNano(),
			Height:     height,
		},
		Txs: txs,
	}
	if err := b.Header.Sign(m.key, m.random); err != nil {
		return nil, fmt.Errorf("build block: %w", err)
	}
	if m.metrics != nil {
		m.metrics.assemblySeconds.ObserveSince(start)
	}
	return b, nil
}

// Mine builds the next block, adds it to the chain and prunes the mempool.
func (m *Miner) Mine(now time.Time) (*Block, error) {
	b, err := m.BuildBlock(now)
	if err != nil {
		return nil, err
	}
	if err := m.chain.AddBlock(b); err != nil {
		return nil, fmt.Errorf("mine: %w", err)
	}
	if m.metrics != nil {
		m.metrics.blocksMined.Inc()
	}
	m.mempool.RemoveConfirmed(b)
	return b, nil
}

// PublicKey returns the miner's serialized public key, for
// Chain.AuthorizeMiner.
func (m *Miner) PublicKey() []byte { return m.key.PublicBytes() }
