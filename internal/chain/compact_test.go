package chain

import (
	"testing"

	"bcwan/internal/script"
)

// buildChainedSpends returns a base UTXO set holding fanout funding
// outputs and n valid unsigned transactions where tx i+1 spends tx i's
// first output — the shape that exercises chained unconfirmed spends.
// Scripts are unsigned; pair with Params.VerifyScripts = false.
func buildChainedSpends(tb testing.TB, n, fanout int) (*UTXOSet, []*Tx) {
	tb.Helper()
	var lockTo [script.HashLen]byte
	lock := script.PayToPubKeyHash(lockTo)
	fund := &Tx{Version: 1}
	for i := 0; i < fanout; i++ {
		fund.Outputs = append(fund.Outputs, TxOut{Value: 1000, Lock: lock})
	}
	utxo := NewUTXOSet()
	if err := utxo.ApplyTx(fund, 0); err != nil {
		tb.Fatal(err)
	}
	txs := make([]*Tx, n)
	prev := OutPoint{TxID: fund.ID(), Index: 0}
	for i := range txs {
		txs[i] = &Tx{
			Version: 1,
			Inputs:  []TxIn{{Prev: prev}},
			Outputs: []TxOut{{Value: 1000, Lock: lock}},
		}
		prev = OutPoint{TxID: txs[i].ID(), Index: 0}
	}
	return utxo, txs
}

// noVerifyParams disables script checks so fixture transactions need no
// signatures.
func noVerifyParams() Params {
	p := DefaultParams()
	p.VerifyScripts = false
	return p
}

// sketchFixture builds a pool-shaped block: coinbase plus n chained txs.
func sketchFixture(t *testing.T, n int) (*Block, []*Tx) {
	t.Helper()
	_, txs := buildChainedSpends(t, n, 1)
	coinbase := &Tx{
		Version: 1,
		Inputs:  []TxIn{{Prev: OutPoint{Index: coinbaseIndex}}},
		Outputs: []TxOut{{Value: 50, Lock: script.PayToPubKeyHash([20]byte{1})}},
	}
	all := append([]*Tx{coinbase}, txs...)
	b := &Block{
		Header: Header{Version: 1, Height: 1, MerkleRoot: MerkleRoot(all)},
		Txs:    all,
	}
	return b, txs
}

// poolLookup builds a Reconstruct lookup over a set of transactions.
func poolLookup(txs []*Tx) func(uint64) []*Tx {
	byShort := make(map[uint64][]*Tx)
	for _, tx := range txs {
		sid := ShortTxID(tx.ID())
		byShort[sid] = append(byShort[sid], tx)
	}
	return func(sid uint64) []*Tx { return byShort[sid] }
}

func TestCompactBlockRoundTripWarmPool(t *testing.T) {
	b, txs := sketchFixture(t, 8)
	cb := NewCompactBlock(b)
	if cb.TxCount() != len(b.Txs) {
		t.Fatalf("TxCount = %d, want %d", cb.TxCount(), len(b.Txs))
	}
	if cb.BlockID() != b.ID() {
		t.Fatal("sketch block id diverges from block id")
	}

	wire := cb.Serialize()
	if full := b.Serialize(); len(wire) >= len(full) {
		t.Fatalf("compact encoding (%d bytes) not smaller than full block (%d bytes)", len(wire), len(full))
	}
	decoded, err := DeserializeCompactBlock(wire)
	if err != nil {
		t.Fatal(err)
	}

	// Warm pool: every non-coinbase tx resolves, no round trip needed.
	got, _, missing, err := decoded.Reconstruct(poolLookup(txs))
	if err != nil || len(missing) != 0 {
		t.Fatalf("warm reconstruct: missing=%v err=%v", missing, err)
	}
	if got.ID() != b.ID() || len(got.Txs) != len(b.Txs) {
		t.Fatal("reconstructed block differs from original")
	}
}

func TestCompactBlockMissingTxsAssemble(t *testing.T) {
	const k = 3
	b, txs := sketchFixture(t, 8)
	cb := NewCompactBlock(b)

	// Cold pool: the receiver lacks the first k transactions.
	warm := txs[k:]
	block, partial, missing, err := cb.Reconstruct(poolLookup(warm))
	if err != nil {
		t.Fatal(err)
	}
	if block != nil {
		t.Fatal("reconstruction claimed completion with k txs missing")
	}
	if len(missing) != k {
		t.Fatalf("missing = %v, want %d indexes", missing, k)
	}
	// Missing indexes are block positions: txs[0..k-1] sit at 1..k.
	for i, idx := range missing {
		if int(idx) != i+1 {
			t.Fatalf("missing[%d] = %d, want %d", i, idx, i+1)
		}
	}

	// getblocktxn/blocktxn round trip on the wire.
	req := EncodeGetBlockTxn(cb.BlockID(), missing)
	reqID, reqIdx, err := DecodeGetBlockTxn(req)
	if err != nil || reqID != cb.BlockID() || len(reqIdx) != k {
		t.Fatalf("getblocktxn round trip: %v %v %v", reqID, reqIdx, err)
	}
	var fills []PrefilledTx
	for _, idx := range reqIdx {
		fills = append(fills, PrefilledTx{Index: idx, Tx: b.Txs[idx]})
	}
	resp := EncodeBlockTxn(cb.BlockID(), fills)
	respID, respTxs, err := DecodeBlockTxn(resp)
	if err != nil || respID != cb.BlockID() || len(respTxs) != k {
		t.Fatalf("blocktxn round trip: %v %d %v", respID, len(respTxs), err)
	}

	got, err := cb.Assemble(partial, respTxs)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != b.ID() {
		t.Fatal("assembled block differs from original")
	}

	// Incomplete fills must not pass the merkle gate.
	if _, err := cb.Assemble(partial, respTxs[:k-1]); err == nil {
		t.Fatal("Assemble accepted an incomplete fill set")
	}
}

func TestCompactBlockCollisionFallsBack(t *testing.T) {
	b, txs := sketchFixture(t, 4)
	cb := NewCompactBlock(b)

	// A short-id collision (two candidates) counts as missing rather
	// than guessing.
	collide := func(sid uint64) []*Tx {
		cands := poolLookup(txs)(sid)
		if len(cands) == 1 && cands[0] == txs[0] {
			return []*Tx{txs[0], txs[1]}
		}
		return cands
	}
	block, _, missing, err := cb.Reconstruct(collide)
	if err != nil || block != nil {
		t.Fatalf("collision reconstruct: block=%v err=%v", block, err)
	}
	if len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("missing = %v, want [1]", missing)
	}

	// A wrong-but-unique candidate is caught by the merkle check.
	wrong := func(sid uint64) []*Tx {
		cands := poolLookup(txs)(sid)
		if len(cands) == 1 && cands[0] == txs[0] {
			return []*Tx{txs[1]}
		}
		return cands
	}
	if _, _, _, err := cb.Reconstruct(wrong); err != ErrCompactMismatch {
		t.Fatalf("wrong candidate err = %v, want ErrCompactMismatch", err)
	}
}

func TestCompactBlockMalformedEncodings(t *testing.T) {
	b, _ := sketchFixture(t, 2)
	wire := NewCompactBlock(b).Serialize()
	for _, bad := range [][]byte{
		nil,
		wire[:10],
		wire[:len(wire)-1],
		append(append([]byte{}, wire...), 0),
	} {
		if _, err := DeserializeCompactBlock(bad); err == nil {
			t.Fatalf("DeserializeCompactBlock accepted malformed input of %d bytes", len(bad))
		}
	}
	if _, _, err := DecodeGetBlockTxn([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeGetBlockTxn accepted a truncated frame")
	}
	if _, _, err := DecodeBlockTxn([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeBlockTxn accepted a truncated frame")
	}

	// A sketch whose prefilled index exceeds the tx count is rejected at
	// reconstruction.
	cb := NewCompactBlock(b)
	cb.ShortIDs = append(cb.ShortIDs, 42)
	cb.Prefilled[0].Index = uint32(cb.TxCount())
	if _, _, _, err := cb.Reconstruct(func(uint64) []*Tx { return nil }); err == nil {
		t.Fatal("Reconstruct accepted an out-of-range prefilled index")
	}
}

func TestShortTxIDPrefix(t *testing.T) {
	id := Hash{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0xff}
	if got := ShortTxID(id); got != 0x0102030405060708 {
		t.Fatalf("ShortTxID = %x", got)
	}
}

func TestMempoolGetByShort(t *testing.T) {
	utxo, txs := buildChainedSpends(t, 3, 1)
	params := noVerifyParams()
	m := NewMempool()
	for _, tx := range txs {
		if err := m.Accept(tx, utxo, 0, params); err != nil {
			t.Fatal(err)
		}
	}
	for _, tx := range txs {
		got := m.GetByShort(ShortTxID(tx.ID()))
		if len(got) != 1 || got[0].ID() != tx.ID() {
			t.Fatalf("GetByShort(%x) = %v", ShortTxID(tx.ID()), got)
		}
	}
	if got := m.GetByShort(0xdeadbeef); got != nil {
		t.Fatalf("GetByShort(unknown) = %v, want nil", got)
	}
	// Removal cleans the index.
	m.RemoveConfirmed(&Block{Txs: txs[:1]})
	if got := m.GetByShort(ShortTxID(txs[0].ID())); len(got) != 0 {
		t.Fatalf("GetByShort after removal = %v", got)
	}
}
