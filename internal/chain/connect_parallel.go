package chain

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bcwan/internal/script"
)

// Parallel block connect/disconnect over the sharded UTXO set.
//
// The sequential path interleaves validation and mutation transaction by
// transaction. The parallel path splits that into:
//
//  1. a cheap sequential *plan* pass that, without touching the maps,
//     buckets every spend and create into the shard owning its outpoint
//     (in block order, which each shard's stream preserves);
//  2. a parallel *apply* pass where workers claim whole shards and run
//     their streams under the shard lock — existence and duplicate
//     checks only ever depend on same-outpoint history, which lives
//     entirely inside one shard, so per-shard order is enough;
//  3. a sequential *join* that runs the cross-shard checks (maturity,
//     value conservation, subsidy), assembles the undo journal and the
//     script-verification jobs, and on any failure rolls every shard
//     back and reports the same error the sequential path would have.
//
// Error parity matters because tests (and operators) key off messages:
// candidate failures are ranked by (tx index, stage, index-within-stage)
// where stages mirror the sequential check order — locktime/sanity
// abort during planning; input-level failures (missing outpoint,
// immature coinbase) rank by input index; value shortfall follows;
// duplicate creates rank last by output index. The minimum-ranked
// failure is exactly the first one the sequential path would hit.

// parallelConnectMinOps is the smallest per-block mutation count worth
// fanning out; below it the sequential path wins on overhead.
const parallelConnectMinOps = 24

// Failure stages, in sequential check order within one transaction.
const (
	stageInput  = 1 // missing outpoint or immature coinbase spend, by input index
	stageValue  = 2 // inputs worth less than outputs
	stageCreate = 3 // duplicate created outpoint, by output index
)

// shardOp is one planned mutation in a shard's stream.
type shardOp struct {
	txIdx int
	idx   int  // input index for spends, output index for creates
	spend bool // spend (delete) vs create (insert)
	op    OutPoint
	entry UTXOEntry // creates only: the entry to insert
}

// opFailure is one candidate error with its deterministic rank.
type opFailure struct {
	txIdx int
	stage int
	idx   int
	err   error
}

// before orders failures by (txIdx, stage, idx).
func (f *opFailure) before(g *opFailure) bool {
	if f.txIdx != g.txIdx {
		return f.txIdx < g.txIdx
	}
	if f.stage != g.stage {
		return f.stage < g.stage
	}
	return f.idx < g.idx
}

// connectPlan is the output of the planning pass.
type connectPlan struct {
	byShard [utxoShardCount][]shardOp
	// spent[i][j] is filled by the apply pass with the entry consumed by
	// tx i's input j (disjoint slots, so workers write without locks).
	spent [][]SpentOutput
	// created[i] lists tx i's created outpoints in output order.
	created [][]OutPoint
	ops     int
}

// blockOpCount sizes the parallel-vs-sequential decision: the number of
// UTXO mutations the block will perform.
func blockOpCount(b *Block) int {
	n := 0
	for _, tx := range b.Txs {
		if !tx.IsCoinbase() {
			n += len(tx.Inputs)
		}
		n += len(tx.Outputs)
	}
	return n
}

// planBlock runs the stateless per-transaction checks (sanity,
// finality) and buckets every mutation into its shard, in block order.
// Plan-stage failures abort before any shard is touched — the exact
// behavior of the sequential path, which validates those rules before
// mutating anything for the failing transaction.
func planBlock(b *Block) (*connectPlan, error) {
	height := b.Header.Height
	plan := &connectPlan{
		spent:   make([][]SpentOutput, len(b.Txs)),
		created: make([][]OutPoint, len(b.Txs)),
	}
	for i, tx := range b.Txs {
		if err := CheckTxSanity(tx); err != nil {
			return nil, fmt.Errorf("tx %d (%s): %w", i, tx.ID(), err)
		}
		if !tx.IsCoinbase() {
			if tx.LockTime > height {
				return nil, fmt.Errorf("tx %d (%s): %w: lock time %d, height %d",
					i, tx.ID(), ErrTxNotFinal, tx.LockTime, height)
			}
			plan.spent[i] = make([]SpentOutput, len(tx.Inputs))
			for j, in := range tx.Inputs {
				si := shardIndex(in.Prev)
				plan.byShard[si] = append(plan.byShard[si], shardOp{txIdx: i, idx: j, spend: true, op: in.Prev})
				plan.ops++
			}
		}
		id := tx.ID()
		cb := tx.IsCoinbase()
		for j, out := range tx.Outputs {
			if script.Classify(out.Lock) == script.ClassOpReturn {
				continue
			}
			op := OutPoint{TxID: id, Index: uint32(j)}
			si := shardIndex(op)
			plan.byShard[si] = append(plan.byShard[si], shardOp{
				txIdx: i, idx: j, op: op,
				entry: UTXOEntry{Out: out, Height: height, Coinbase: cb},
			})
			plan.created[i] = append(plan.created[i], op)
			plan.ops++
		}
	}
	return plan, nil
}

// applyShard runs one shard's stream under its lock, stopping at the
// first failure. It returns how many ops were applied (a prefix of the
// stream — what the rollback must revert) and the failure, if any.
func (u *UTXOSet) applyShard(si int, ops []shardOp, spent [][]SpentOutput) (int, *opFailure) {
	s := &u.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range ops {
		o := &ops[k]
		if o.spend {
			e, ok := s.get(o.op)
			if !ok {
				return k, &opFailure{txIdx: o.txIdx, stage: stageInput, idx: o.idx,
					err: fmt.Errorf("%w: %s", ErrMissingUTXO, o.op)}
			}
			spent[o.txIdx][o.idx] = SpentOutput{Prev: o.op, Entry: e}
			s.del(o.op)
		} else {
			if _, dup := s.get(o.op); dup {
				return k, &opFailure{txIdx: o.txIdx, stage: stageCreate, idx: o.idx,
					err: fmt.Errorf("%w: %s", ErrDuplicateUTXO, o.op)}
			}
			s.put(o.op, o.entry)
		}
	}
	return len(ops), nil
}

// revertShard reverses the applied prefix of one shard's stream, in
// reverse order, under the shard lock.
func (u *UTXOSet) revertShard(si int, ops []shardOp, applied int, spent [][]SpentOutput) {
	s := &u.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := applied - 1; k >= 0; k-- {
		o := &ops[k]
		if o.spend {
			s.put(o.op, spent[o.txIdx][o.idx].Entry)
		} else {
			s.del(o.op)
		}
	}
}

// forEachShard fans fn out over the non-empty shards of plan on up to
// workers goroutines (including the calling one).
func forEachShard(plan *connectPlan, workers int, fn func(si int)) {
	active := make([]int, 0, utxoShardCount)
	for si := range plan.byShard {
		if len(plan.byShard[si]) > 0 {
			active = append(active, si)
		}
	}
	if workers > len(active) {
		workers = len(active)
	}
	if workers <= 1 {
		for _, si := range active {
			fn(si)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(active) {
				return
			}
			fn(active[i])
		}
	}
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
}

// connectBlockParallel is connectBlockUndo's sharded fast path: it
// validates the block against — and applies it to — the set with
// per-shard parallelism, returning the undo journal on success. On any
// failure every shard is rolled back and the error matches what the
// sequential path reports, byte for byte. The caller has already run
// checkBlockStateless.
func connectBlockParallel(utxo *UTXOSet, b *Block, params Params, v *Verifier) (*BlockUndo, error) {
	plan, err := planBlock(b)
	if err != nil {
		return nil, err
	}

	workers := v.Workers()
	applied := [utxoShardCount]int{}
	var failMu sync.Mutex
	var fail *opFailure
	forEachShard(plan, workers, func(si int) {
		n, f := utxo.applyShard(si, plan.byShard[si], plan.spent)
		applied[si] = n
		if f != nil {
			failMu.Lock()
			if fail == nil || f.before(fail) {
				fail = f
			}
			failMu.Unlock()
		}
	})

	rollback := func() {
		forEachShard(plan, workers, func(si int) {
			utxo.revertShard(si, plan.byShard[si], applied[si], plan.spent)
		})
	}

	// Cross-shard checks. Shard streams are in block order, so every
	// transaction strictly before the earliest shard failure applied
	// completely and its recorded entries are trustworthy; at and beyond
	// the failure point, unrecorded slots (zero Prev — impossible for a
	// real non-coinbase input) end that transaction's input scan, and any
	// failure found still ranks at or after the shard failure.
	limit := len(b.Txs) - 1
	if fail != nil {
		limit = fail.txIdx
	}
	var fees uint64
	for i, tx := range b.Txs {
		if i > limit {
			break
		}
		if tx.IsCoinbase() {
			continue
		}
		var inValue uint64
		complete := true
		for j := range tx.Inputs {
			so := &plan.spent[i][j]
			if so.Prev.TxID.IsZero() {
				complete = false
				break
			}
			e := &so.Entry
			if e.Coinbase && b.Header.Height-e.Height < params.CoinbaseMaturity {
				f := &opFailure{txIdx: i, stage: stageInput, idx: j,
					err: fmt.Errorf("%w: %s at height %d, spend at %d",
						ErrImmatureSpend, so.Prev, e.Height, b.Header.Height)}
				if fail == nil || f.before(fail) {
					fail = f
				}
				complete = false
				break
			}
			inValue += e.Out.Value
		}
		if !complete {
			continue
		}
		var outValue uint64
		for _, out := range tx.Outputs {
			outValue += out.Value
		}
		if inValue < outValue {
			f := &opFailure{txIdx: i, stage: stageValue,
				err: fmt.Errorf("%w: in %d, out %d", ErrInsufficientIn, inValue, outValue)}
			if fail == nil || f.before(fail) {
				fail = f
			}
			continue
		}
		fees += inValue - outValue
	}
	if fail != nil {
		rollback()
		return nil, fmt.Errorf("tx %d (%s): %w", fail.txIdx, b.Txs[fail.txIdx].ID(), fail.err)
	}

	var coinbaseOut uint64
	for _, out := range b.Txs[0].Outputs {
		coinbaseOut += out.Value
	}
	if coinbaseOut > params.CoinbaseReward+fees {
		rollback()
		return nil, fmt.Errorf("%w: pays %d, allowed %d", ErrExcessSubsidy, coinbaseOut, params.CoinbaseReward+fees)
	}

	// Assemble the journal from the recorded mutations: spent entries in
	// input order, created outpoints in output order — the same shapes
	// ApplyTxUndo records.
	undo := &BlockUndo{Txs: make([]*TxUndo, len(b.Txs))}
	for i := range b.Txs {
		undo.Txs[i] = &TxUndo{Spent: plan.spent[i], Created: plan.created[i]}
	}

	if params.VerifyScripts {
		// Jobs in (tx, input) order, matching the sequential accumulation
		// so the verifier's lowest-position error selection agrees.
		jobs := make([]verifyJob, 0, plan.ops)
		for i, tx := range b.Txs {
			if tx.IsCoinbase() {
				continue
			}
			for j := range tx.Inputs {
				jobs = append(jobs, verifyJob{tx: tx, txIdx: i, inputIdx: j, lock: plan.spent[i][j].Entry.Out.Lock})
			}
		}
		if err := v.verifyJobs(jobs); err != nil {
			if uerr := utxo.UndoBlockWorkers(undo, workers); uerr != nil {
				panic(fmt.Sprintf("chain: rollback failed: %v", uerr))
			}
			return nil, err
		}
	}
	return undo, nil
}

// undoOp is one planned disconnect mutation.
type undoOp struct {
	seq     int // global sequence for deterministic error selection
	op      OutPoint
	restore bool      // restore a spent entry (vs delete a created one)
	entry   UTXOEntry // restores only
}

// UndoBlockWorkers is UndoBlock with per-shard parallelism: the
// journal's mutations are bucketed by shard in reverse block order and
// applied on up to workers goroutines. Inconsistencies (journal
// corruption — the callers panic on it) report the same message as the
// sequential path, selected by global mutation order; unlike the
// sequential path a failed disconnect does not guarantee which other
// journal entries were already applied.
func (u *UTXOSet) UndoBlockWorkers(undo *BlockUndo, workers int) error {
	ops := 0
	for _, tu := range undo.Txs {
		ops += len(tu.Created) + len(tu.Spent)
	}
	if workers <= 1 || ops < parallelConnectMinOps {
		return u.UndoBlock(undo)
	}

	var byShard [utxoShardCount][]undoOp
	seq := 0
	for i := len(undo.Txs) - 1; i >= 0; i-- {
		tu := undo.Txs[i]
		for _, op := range tu.Created {
			si := shardIndex(op)
			byShard[si] = append(byShard[si], undoOp{seq: seq, op: op})
			seq++
		}
		for j := len(tu.Spent) - 1; j >= 0; j-- {
			s := tu.Spent[j]
			si := shardIndex(s.Prev)
			byShard[si] = append(byShard[si], undoOp{seq: seq, op: s.Prev, restore: true, entry: s.Entry})
			seq++
		}
	}

	active := make([]int, 0, utxoShardCount)
	for si := range byShard {
		if len(byShard[si]) > 0 {
			active = append(active, si)
		}
	}
	if workers > len(active) {
		workers = len(active)
	}

	var failMu sync.Mutex
	failSeq := seq
	var failErr error
	record := func(at int, err error) {
		failMu.Lock()
		if at < failSeq {
			failSeq, failErr = at, err
		}
		failMu.Unlock()
	}
	undoShard := func(si int) {
		s := &u.shards[si]
		s.mu.Lock()
		defer s.mu.Unlock()
		for k := range byShard[si] {
			o := &byShard[si][k]
			if o.restore {
				if _, dup := s.get(o.op); dup {
					record(o.seq, fmt.Errorf("chain: undo: spent outpoint %s already present", o.op))
					return
				}
				s.put(o.op, o.entry)
			} else {
				if _, ok := s.get(o.op); !ok {
					record(o.seq, fmt.Errorf("chain: undo: created outpoint %s missing", o.op))
					return
				}
				s.del(o.op)
			}
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(active) {
				return
			}
			undoShard(active[i])
		}
	}
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
	return failErr
}
