package chain

import (
	"bytes"
	"fmt"

	"bcwan/internal/script"
)

// Undo journals make chain state incremental: when a block connects,
// every UTXO mutation it performs is recorded so a reorganization can
// disconnect the losing branch in O(reorg depth) instead of replaying
// the winning branch from genesis. The journal is the exact inverse of
// ApplyTx — spent entries are restored with their original metadata,
// created outpoints are deleted — so disconnect(connect(S)) == S
// byte-for-byte, an invariant the property tests replay-check.

// SpentOutput is one input's consumed entry, with the metadata needed to
// restore it on disconnect.
type SpentOutput struct {
	Prev  OutPoint
	Entry UTXOEntry
}

// TxUndo records the UTXO mutations of one applied transaction: the
// entries its inputs consumed (empty for coinbases) and the outpoints
// its outputs created (OP_RETURN outputs never enter the set, so they
// never appear here).
type TxUndo struct {
	Spent   []SpentOutput
	Created []OutPoint
}

// BlockUndo is the per-block journal, one TxUndo per transaction in
// block order.
type BlockUndo struct {
	Txs []*TxUndo
}

// spendLocked removes one entry under its shard lock, returning the
// removed entry, or false if it is absent.
func (u *UTXOSet) spendLocked(op OutPoint) (UTXOEntry, bool) {
	s := u.shardFor(op)
	s.mu.Lock()
	e, ok := s.get(op)
	if ok {
		s.del(op)
	}
	s.mu.Unlock()
	return e, ok
}

// restoreLocked re-inserts a spent entry under its shard lock.
func (u *UTXOSet) restoreLocked(op OutPoint, e UTXOEntry) {
	s := u.shardFor(op)
	s.mu.Lock()
	s.put(op, e)
	s.mu.Unlock()
}

// createLocked inserts one entry under its shard lock, or reports false
// if the outpoint already exists.
func (u *UTXOSet) createLocked(op OutPoint, e UTXOEntry) bool {
	s := u.shardFor(op)
	s.mu.Lock()
	if _, dup := s.get(op); dup {
		s.mu.Unlock()
		return false
	}
	s.put(op, e)
	s.mu.Unlock()
	return true
}

// deleteLocked removes one entry under its shard lock, reporting
// whether it was present.
func (u *UTXOSet) deleteLocked(op OutPoint) bool {
	s := u.shardFor(op)
	s.mu.Lock()
	_, ok := s.get(op)
	if ok {
		s.del(op)
	}
	s.mu.Unlock()
	return ok
}

// ApplyTxUndo is ApplyTx with journaling: it spends the transaction's
// inputs and creates its outputs, returning the undo record that
// UndoTx needs to reverse the mutation exactly. On error the set is
// left untouched.
func (u *UTXOSet) ApplyTxUndo(tx *Tx, height int64) (*TxUndo, error) {
	undo := &TxUndo{}
	if !tx.IsCoinbase() {
		undo.Spent = make([]SpentOutput, 0, len(tx.Inputs))
		for _, in := range tx.Inputs {
			e, ok := u.spendLocked(in.Prev)
			if !ok {
				// Roll back the inputs already consumed so a failed
				// apply leaves no partial mutation.
				for _, s := range undo.Spent {
					u.restoreLocked(s.Prev, s.Entry)
				}
				return nil, fmt.Errorf("%w: %s", ErrMissingUTXO, in.Prev)
			}
			undo.Spent = append(undo.Spent, SpentOutput{Prev: in.Prev, Entry: e})
		}
	}
	id := tx.ID()
	for i, out := range tx.Outputs {
		if script.Classify(out.Lock) == script.ClassOpReturn {
			continue
		}
		op := OutPoint{TxID: id, Index: uint32(i)}
		if !u.createLocked(op, UTXOEntry{Out: out, Height: height, Coinbase: tx.IsCoinbase()}) {
			for _, c := range undo.Created {
				u.deleteLocked(c)
			}
			for _, s := range undo.Spent {
				u.restoreLocked(s.Prev, s.Entry)
			}
			return nil, fmt.Errorf("%w: %s", ErrDuplicateUTXO, op)
		}
		undo.Created = append(undo.Created, op)
	}
	return undo, nil
}

// UndoTx reverses ApplyTxUndo: created outpoints are removed, spent
// entries restored. It fails (without partial mutation beyond the
// detected inconsistency) if the set does not reflect the apply being
// undone — which can only mean journal corruption.
func (u *UTXOSet) UndoTx(undo *TxUndo) error {
	for _, op := range undo.Created {
		if !u.deleteLocked(op) {
			return fmt.Errorf("chain: undo: created outpoint %s missing", op)
		}
	}
	for i := len(undo.Spent) - 1; i >= 0; i-- {
		s := undo.Spent[i]
		if !u.createLocked(s.Prev, s.Entry) {
			return fmt.Errorf("chain: undo: spent outpoint %s already present", s.Prev)
		}
	}
	return nil
}

// UndoBlock reverses every transaction of a connected block, in reverse
// block order (a transaction's outputs may have been spent by a later
// transaction in the same block).
func (u *UTXOSet) UndoBlock(undo *BlockUndo) error {
	for i := len(undo.Txs) - 1; i >= 0; i-- {
		if err := u.UndoTx(undo.Txs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two sets hold byte-identical entries — the
// acceptance predicate of the undo-vs-replay cross-check. Both sets use
// the same outpoint→shard mapping, so the comparison runs shard by
// shard.
func (u *UTXOSet) Equal(other *UTXOSet) bool {
	for i := range u.shards {
		us, os := &u.shards[i], &other.shards[i]
		us.mu.RLock()
		os.mu.RLock()
		eq := len(us.entries) == len(os.entries)
		if eq {
			for op, e := range us.entries {
				oe, ok := os.entries[op]
				if !ok || e.Height != oe.Height || e.Coinbase != oe.Coinbase ||
					e.Out.Value != oe.Out.Value || !bytes.Equal(e.Out.Lock, oe.Out.Lock) {
					eq = false
					break
				}
			}
		}
		os.mu.RUnlock()
		us.mu.RUnlock()
		if !eq {
			return false
		}
	}
	return true
}
