package chain

import (
	"bytes"
	"fmt"

	"bcwan/internal/script"
)

// Undo journals make chain state incremental: when a block connects,
// every UTXO mutation it performs is recorded so a reorganization can
// disconnect the losing branch in O(reorg depth) instead of replaying
// the winning branch from genesis. The journal is the exact inverse of
// ApplyTx — spent entries are restored with their original metadata,
// created outpoints are deleted — so disconnect(connect(S)) == S
// byte-for-byte, an invariant the property tests replay-check.

// SpentOutput is one input's consumed entry, with the metadata needed to
// restore it on disconnect.
type SpentOutput struct {
	Prev  OutPoint
	Entry UTXOEntry
}

// TxUndo records the UTXO mutations of one applied transaction: the
// entries its inputs consumed (empty for coinbases) and the outpoints
// its outputs created (OP_RETURN outputs never enter the set, so they
// never appear here).
type TxUndo struct {
	Spent   []SpentOutput
	Created []OutPoint
}

// BlockUndo is the per-block journal, one TxUndo per transaction in
// block order.
type BlockUndo struct {
	Txs []*TxUndo
}

// ApplyTxUndo is ApplyTx with journaling: it spends the transaction's
// inputs and creates its outputs, returning the undo record that
// UndoTx needs to reverse the mutation exactly. On error the set is
// left untouched.
func (u *UTXOSet) ApplyTxUndo(tx *Tx, height int64) (*TxUndo, error) {
	undo := &TxUndo{}
	if !tx.IsCoinbase() {
		undo.Spent = make([]SpentOutput, 0, len(tx.Inputs))
		for _, in := range tx.Inputs {
			e, ok := u.entries[in.Prev]
			if !ok {
				// Roll back the inputs already consumed so a failed
				// apply leaves no partial mutation.
				for _, s := range undo.Spent {
					u.entries[s.Prev] = s.Entry
				}
				return nil, fmt.Errorf("%w: %s", ErrMissingUTXO, in.Prev)
			}
			undo.Spent = append(undo.Spent, SpentOutput{Prev: in.Prev, Entry: e})
			delete(u.entries, in.Prev)
		}
	}
	id := tx.ID()
	for i, out := range tx.Outputs {
		if script.Classify(out.Lock) == script.ClassOpReturn {
			continue
		}
		op := OutPoint{TxID: id, Index: uint32(i)}
		if _, ok := u.entries[op]; ok {
			for _, c := range undo.Created {
				delete(u.entries, c)
			}
			for _, s := range undo.Spent {
				u.entries[s.Prev] = s.Entry
			}
			return nil, fmt.Errorf("%w: %s", ErrDuplicateUTXO, op)
		}
		u.entries[op] = UTXOEntry{Out: out, Height: height, Coinbase: tx.IsCoinbase()}
		undo.Created = append(undo.Created, op)
	}
	return undo, nil
}

// UndoTx reverses ApplyTxUndo: created outpoints are removed, spent
// entries restored. It fails (without partial mutation beyond the
// detected inconsistency) if the set does not reflect the apply being
// undone — which can only mean journal corruption.
func (u *UTXOSet) UndoTx(undo *TxUndo) error {
	for _, op := range undo.Created {
		if _, ok := u.entries[op]; !ok {
			return fmt.Errorf("chain: undo: created outpoint %s missing", op)
		}
		delete(u.entries, op)
	}
	for i := len(undo.Spent) - 1; i >= 0; i-- {
		s := undo.Spent[i]
		if _, ok := u.entries[s.Prev]; ok {
			return fmt.Errorf("chain: undo: spent outpoint %s already present", s.Prev)
		}
		u.entries[s.Prev] = s.Entry
	}
	return nil
}

// UndoBlock reverses every transaction of a connected block, in reverse
// block order (a transaction's outputs may have been spent by a later
// transaction in the same block).
func (u *UTXOSet) UndoBlock(undo *BlockUndo) error {
	for i := len(undo.Txs) - 1; i >= 0; i-- {
		if err := u.UndoTx(undo.Txs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two sets hold byte-identical entries — the
// acceptance predicate of the undo-vs-replay cross-check.
func (u *UTXOSet) Equal(other *UTXOSet) bool {
	if len(u.entries) != len(other.entries) {
		return false
	}
	for op, e := range u.entries {
		oe, ok := other.entries[op]
		if !ok || e.Height != oe.Height || e.Coinbase != oe.Coinbase ||
			e.Out.Value != oe.Out.Value || !bytes.Equal(e.Out.Lock, oe.Out.Lock) {
			return false
		}
	}
	return true
}
