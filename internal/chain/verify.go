package chain

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bcwan/internal/script"
)

// verifyJob is one deferred script verification: input index inputIdx of
// tx must satisfy the locking script lock. txIdx tags the job with the
// transaction's position in its block for error reporting.
type verifyJob struct {
	tx       *Tx
	txIdx    int
	inputIdx int
	lock     script.Script
}

// run executes the script pair. Script execution depends only on the
// transaction and the locking script — never on UTXO state — which is
// what makes deferring and parallelizing it safe.
func (j verifyJob) run() error {
	return j.tx.VerifyInput(j.inputIdx, j.lock)
}

// key returns the job's signature-cache key.
func (j verifyJob) key() sigCacheKey {
	return sigCacheKey{TxID: j.tx.ID(), Index: uint32(j.inputIdx), Lock: lockHash(j.lock)}
}

// wrap attaches block-position context to a verification failure, in the
// same shape connectBlock reports UTXO-level failures.
func (j verifyJob) wrap(err error) error {
	return fmt.Errorf("tx %d (%s): %w", j.txIdx, j.tx.ID(), err)
}

// Verifier runs script verification jobs, optionally fanning them out to
// a bounded worker pool and short-circuiting past work recorded in a
// shared signature cache. The zero-value-equivalent NewVerifier(0, nil)
// reproduces the seed's sequential, uncached behavior exactly.
//
// One Verifier is shared by every consumer that validates the same chain
// — block connect, reorg replay, mempool admission and block building —
// so a script pair verified at mempool entry is not re-verified when its
// block connects.
type Verifier struct {
	workers int
	cache   *SigCache
}

// NewVerifier creates a verifier. workers is the fan-out width for one
// batch of jobs: 0 (or 1) verifies sequentially on the caller's
// goroutine, preserving deterministic error order for the Fig. 5
// ablation; n > 1 verifies on min(n, len(jobs)) goroutines with
// first-error cancellation. cache may be nil to disable memoization.
func NewVerifier(workers int, cache *SigCache) *Verifier {
	return &Verifier{workers: workers, cache: cache}
}

// Workers reports the configured fan-out width.
func (v *Verifier) Workers() int {
	if v == nil {
		return 0
	}
	return v.workers
}

// Cache returns the shared signature cache (nil when disabled).
func (v *Verifier) Cache() *SigCache {
	if v == nil {
		return nil
	}
	return v.cache
}

// verifyJobs runs every job, returning nil only if all pass. Cache hits
// are skipped; successes are recorded. A nil Verifier degrades to the
// sequential uncached path.
func (v *Verifier) verifyJobs(jobs []verifyJob) error {
	if len(jobs) == 0 {
		return nil
	}
	var cache *SigCache
	workers := 0
	if v != nil {
		cache, workers = v.cache, v.workers
	}

	// Cache pass: drop jobs whose exact (txid, input, lock) triple
	// verified before. Done up front so the pool sizes itself to the
	// residual work.
	pending := jobs
	if cache != nil {
		pending = make([]verifyJob, 0, len(jobs))
		for _, j := range jobs {
			if !cache.Contains(j.key()) {
				pending = append(pending, j)
			}
		}
	}
	if len(pending) == 0 {
		return nil
	}

	if workers <= 1 || len(pending) == 1 {
		for _, j := range pending {
			if err := j.run(); err != nil {
				return j.wrap(err)
			}
			if cache != nil {
				cache.Add(j.key())
			}
		}
		return nil
	}
	return runParallel(pending, workers, cache)
}

// runParallel fans jobs out to a worker pool with first-error
// cancellation: once any job fails, workers stop picking up new jobs.
// Among the failures observed before cancellation, the lowest-position
// one is reported, keeping messages stable for a given invalid block.
func runParallel(jobs []verifyJob, workers int, cache *SigCache) error {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		next   atomic.Int64 // index of the next unclaimed job
		failed atomic.Bool  // cancellation flag
		wg     sync.WaitGroup

		errMu    sync.Mutex
		firstErr error
		firstPos = len(jobs)
	)
	record := func(pos int, err error) {
		failed.Store(true)
		errMu.Lock()
		if pos < firstPos {
			firstPos, firstErr = pos, err
		}
		errMu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				if err := j.run(); err != nil {
					record(i, j.wrap(err))
					return
				}
				if cache != nil {
					cache.Add(j.key())
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
