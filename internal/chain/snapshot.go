package chain

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"bcwan/internal/bccrypto"
)

// Snapshot bootstrap (the assumeutxo shape, adapted to proof of
// authority): instead of a hash hard-coded at release time, an
// authorized miner signs a SnapshotCommitment binding a height, the
// block ID at that height, and the hash of the serialized UTXO set
// after connecting that block. A joining node that has validated the
// header spine checks three things — the commitment signature is from
// an authorized miner, the committed block ID matches its own spine at
// that height, and the assembled snapshot bytes hash to the committed
// value — and can then install the UTXO set without replaying bodies.

// Snapshot errors.
var (
	// ErrPrunedFork reports a reorg whose fork point lies at or below the
	// pruned horizon; the bodies and undo journals needed to unwind it
	// are gone, so the branch is rejected.
	ErrPrunedFork = errors.New("chain: reorg would cross the pruned horizon")
	// ErrBadCommitment reports a snapshot commitment that fails
	// structural or signature checks.
	ErrBadCommitment = errors.New("chain: bad snapshot commitment")
	// ErrNotEmpty reports InitFromSnapshot on a chain that has already
	// connected blocks.
	ErrNotEmpty = errors.New("chain: snapshot install requires an empty chain")
)

// snapshotCommitmentVersion is the only commitment encoding this build
// understands; decoding rejects other versions.
const snapshotCommitmentVersion = 1

// SnapshotCommitment is a miner-signed statement that the UTXO set
// after connecting block BlockID at Height serializes (SerializeUTXO)
// to UTXOSize bytes hashing to UTXOHash.
type SnapshotCommitment struct {
	Version  int32
	Height   int64
	BlockID  Hash
	UTXOHash Hash
	// UTXOSize is the byte length of the serialized set, bounding what a
	// joiner will download before the hash check can run.
	UTXOSize    int64
	MinerPubKey []byte
	Signature   []byte
}

// digest returns the signed portion of the commitment.
func (sc *SnapshotCommitment) digest() Hash {
	var buf bytes.Buffer
	writeInt64(&buf, int64(sc.Version))
	writeInt64(&buf, sc.Height)
	buf.Write(sc.BlockID[:])
	buf.Write(sc.UTXOHash[:])
	writeInt64(&buf, sc.UTXOSize)
	writeVarBytes(&buf, sc.MinerPubKey)
	return Hash(bccrypto.DoubleSHA256(buf.Bytes()))
}

// Sign signs the commitment with the miner key.
func (sc *SnapshotCommitment) Sign(key *bccrypto.ECKey, random io.Reader) error {
	sc.MinerPubKey = key.PublicBytes()
	digest := sc.digest()
	sig, err := key.SignDigest(random, digest[:])
	if err != nil {
		return fmt.Errorf("sign snapshot commitment: %w", err)
	}
	sc.Signature = sig
	return nil
}

// VerifySignature checks the miner signature.
func (sc *SnapshotCommitment) VerifySignature() bool {
	digest := sc.digest()
	return bccrypto.VerifyECDigest(sc.MinerPubKey, digest[:], sc.Signature)
}

// Serialize encodes the commitment.
func (sc *SnapshotCommitment) Serialize() []byte {
	var buf bytes.Buffer
	writeInt64(&buf, int64(sc.Version))
	writeInt64(&buf, sc.Height)
	buf.Write(sc.BlockID[:])
	buf.Write(sc.UTXOHash[:])
	writeInt64(&buf, sc.UTXOSize)
	writeVarBytes(&buf, sc.MinerPubKey)
	writeVarBytes(&buf, sc.Signature)
	return buf.Bytes()
}

// DeserializeSnapshotCommitment parses a commitment produced by
// Serialize.
func DeserializeSnapshotCommitment(data []byte) (*SnapshotCommitment, error) {
	r := bytes.NewReader(data)
	var sc SnapshotCommitment
	v, err := readInt64(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	if v != snapshotCommitmentVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCommitment, v)
	}
	sc.Version = int32(v)
	if sc.Height, err = readInt64(r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	if _, err := io.ReadFull(r, sc.BlockID[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated block id", ErrBadCommitment)
	}
	if _, err := io.ReadFull(r, sc.UTXOHash[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated utxo hash", ErrBadCommitment)
	}
	if sc.UTXOSize, err = readInt64(r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	if sc.MinerPubKey, err = readVarBytes(r, 1024); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	if sc.Signature, err = readVarBytes(r, 1024); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCommitment, r.Len())
	}
	return &sc, nil
}

// SnapshotHash is the checksum the commitment binds: the double SHA-256
// of the serialized UTXO set.
func SnapshotHash(serialized []byte) Hash {
	return Hash(bccrypto.DoubleSHA256(serialized))
}

// IsAuthorizedMiner reports whether the key may mint blocks (and sign
// snapshot commitments). An empty miner set authorizes anyone,
// mirroring block acceptance.
func (c *Chain) IsAuthorizedMiner(pubKey []byte) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.miners) == 0 || c.miners[string(pubKey)]
}

// PruneBase returns the pruned horizon: the highest best-branch height
// whose block body has been dropped (0 = nothing pruned). Blocks at or
// below the base exist as header-only stubs; state below the base is
// unreachable and reorgs forking there are rejected.
func (c *Chain) PruneBase() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pruneBase
}

// StateAt reconstructs the best-branch UTXO set as of the given height
// by cloning the tip set and unwinding undo journals — O(distance from
// tip). It is how a serving node materializes the snapshot a joiner
// asks for. Heights below the pruned horizon are unreachable.
func (c *Chain) StateAt(height int64) (*UTXOSet, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tip := int64(len(c.best)) - 1
	if height < c.pruneBase || height > tip {
		return nil, fmt.Errorf("chain: no state at height %d (prune base %d, tip %d)", height, c.pruneBase, tip)
	}
	u := c.utxo.Clone()
	for h := tip; h > height; h-- {
		undo, ok := c.undo[c.best[h].ID()]
		if !ok {
			return nil, fmt.Errorf("chain: missing undo journal at height %d", h)
		}
		if err := u.UndoBlock(undo); err != nil {
			return nil, fmt.Errorf("chain: unwind height %d: %w", h, err)
		}
	}
	return u, nil
}

// InitFromSnapshot installs a verified snapshot into an empty chain:
// the headers (heights 1..N, linking from genesis) become header-only
// stub blocks, the UTXO set becomes the tip state, and the pruned
// horizon is set to N. The chain takes ownership of utxo.
//
// Caller contract: the headers must come from a validated spine
// (HeaderChain) and the UTXO set from bytes matching a verified
// SnapshotCommitment for headers[len-1]. Linkage, heights and miner
// membership are re-checked here; signatures and the snapshot hash are
// not — that verification happened where the data arrived.
func (c *Chain) InitFromSnapshot(headers []*Header, utxo *UTXOSet) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.best) != 1 {
		return fmt.Errorf("%w: height %d", ErrNotEmpty, len(c.best)-1)
	}
	if len(headers) == 0 {
		return fmt.Errorf("%w: empty header spine", ErrBadCommitment)
	}
	prevID := c.genesis.ID()
	prevHeight := int64(0)
	stubs := make([]*Block, 0, len(headers))
	for _, h := range headers {
		if h.Height != prevHeight+1 {
			return fmt.Errorf("%w: height %d after %d", ErrBadHeight, h.Height, prevHeight)
		}
		if h.PrevBlock != prevID {
			return fmt.Errorf("%w: at height %d", ErrBadPrevBlock, h.Height)
		}
		if len(c.miners) > 0 && !c.miners[string(h.MinerPubKey)] {
			return ErrUnknownMiner
		}
		hdr := *h
		b := &Block{Header: hdr}
		stubs = append(stubs, b)
		prevID = b.ID()
		prevHeight = hdr.Height
	}
	for _, b := range stubs {
		c.index[b.ID()] = b
		c.best = append(c.best, b)
	}
	c.utxo = utxo
	c.pruneBase = prevHeight
	if m := c.metrics; m != nil {
		m.utxoSize.Set(int64(c.utxo.Len()))
	}
	return nil
}

// PruneBelow drops block bodies, transaction indexes and undo journals
// for best-branch heights 1..height, replacing the blocks with
// header-only stubs, and discards side-branch blocks in that range
// (they can never win once reorgs across the horizon are rejected).
// Genesis is always kept in full. The tip cannot be pruned.
func (c *Chain) PruneBelow(height int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tip := int64(len(c.best)) - 1
	if height >= tip {
		return fmt.Errorf("chain: cannot prune at or above the tip (%d >= %d)", height, tip)
	}
	if height <= c.pruneBase {
		return nil
	}
	for h := c.pruneBase + 1; h <= height; h++ {
		b := c.best[h]
		if h == 0 || len(b.Txs) == 0 {
			continue
		}
		c.unindexBlockTxs(b)
		stub := &Block{Header: b.Header}
		c.best[h] = stub
		c.index[stub.ID()] = stub
		delete(c.undo, stub.ID())
	}
	for id, b := range c.index {
		h := b.Header.Height
		if h >= 1 && h <= height && c.best[h] != b {
			delete(c.index, id)
		}
	}
	c.pruneBase = height
	if m := c.metrics; m != nil {
		m.txIndexSize.Set(int64(len(c.txIndex)))
		m.spenderIndexSize.Set(int64(len(c.spenders)))
	}
	return nil
}
