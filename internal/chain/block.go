package chain

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"bcwan/internal/bccrypto"
)

// Header is a block header. Blocks are minted by authorized miners
// (Multichain-style proof of authority rather than proof of work — the
// paper's PoC runs a single EC2 master miner with mining disabled on the
// PlanetLab gateways, and §6 argues PoW is unsuitable at the edge).
type Header struct {
	Version    int32
	PrevBlock  Hash
	MerkleRoot Hash
	// Time is the miner's wall-clock timestamp (unix nanoseconds, so
	// simulated clocks keep full resolution).
	Time int64
	// Height is the block's chain height; genesis is 0.
	Height int64
	// MinerPubKey identifies the authorized miner.
	MinerPubKey []byte
	// Signature is the miner's ECDSA signature over the header digest.
	Signature []byte
}

// Block is a header plus its transactions (the first must be coinbase).
type Block struct {
	Header Header
	Txs    []*Tx
}

// Block errors.
var (
	ErrBlockTruncated = errors.New("chain: truncated block encoding")
	ErrNoTxs          = errors.New("chain: block has no transactions")
)

// digest returns the header digest the miner signs (every field except the
// signature itself).
func (h *Header) digest() Hash {
	var buf bytes.Buffer
	writeInt64(&buf, int64(h.Version))
	buf.Write(h.PrevBlock[:])
	buf.Write(h.MerkleRoot[:])
	writeInt64(&buf, h.Time)
	writeInt64(&buf, h.Height)
	writeVarBytes(&buf, h.MinerPubKey)
	return Hash(bccrypto.DoubleSHA256(buf.Bytes()))
}

// ID returns the block hash: the double SHA-256 of the full serialized
// header including the miner signature. The compact relay uses it to
// key a sketch to its block without shipping the body.
func (h *Header) ID() Hash {
	var buf bytes.Buffer
	h.serialize(&buf)
	return Hash(bccrypto.DoubleSHA256(buf.Bytes()))
}

// ID returns the block hash.
func (b *Block) ID() Hash { return b.Header.ID() }

// Timestamp converts the header time to time.Time.
func (h *Header) Timestamp() time.Time { return time.Unix(0, h.Time) }

// Sign signs the header with the miner key.
func (h *Header) Sign(key *bccrypto.ECKey, random io.Reader) error {
	h.MinerPubKey = key.PublicBytes()
	digest := h.digest()
	sig, err := key.SignDigest(random, digest[:])
	if err != nil {
		return fmt.Errorf("sign header: %w", err)
	}
	h.Signature = sig
	return nil
}

// VerifySignature checks the miner signature.
func (h *Header) VerifySignature() bool {
	digest := h.digest()
	return bccrypto.VerifyECDigest(h.MinerPubKey, digest[:], h.Signature)
}

// MerkleRoot computes the Merkle tree root of the transaction IDs, with
// Bitcoin's duplicate-last rule for odd levels.
func MerkleRoot(txs []*Tx) Hash {
	if len(txs) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = tx.ID()
	}
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, len(level)/2)
		for i := range next {
			var buf [64]byte
			copy(buf[:32], level[2*i][:])
			copy(buf[32:], level[2*i+1][:])
			next[i] = Hash(bccrypto.DoubleSHA256(buf[:]))
		}
		level = next
	}
	return level[0]
}

func (h *Header) serialize(buf *bytes.Buffer) {
	writeInt64(buf, int64(h.Version))
	buf.Write(h.PrevBlock[:])
	buf.Write(h.MerkleRoot[:])
	writeInt64(buf, h.Time)
	writeInt64(buf, h.Height)
	writeVarBytes(buf, h.MinerPubKey)
	writeVarBytes(buf, h.Signature)
}

// Serialize encodes the block.
func (b *Block) Serialize() []byte {
	var buf bytes.Buffer
	b.Header.serialize(&buf)
	writeVarInt(&buf, uint64(len(b.Txs)))
	for _, tx := range b.Txs {
		writeVarBytes(&buf, tx.memoized().raw)
	}
	return buf.Bytes()
}

// readHeader parses a serialized header from r; shared by the full
// block and compact block decoders.
func readHeader(r *bytes.Reader) (Header, error) {
	var h Header
	v, err := readInt64(r)
	if err != nil {
		return Header{}, err
	}
	h.Version = int32(v)
	if _, err := io.ReadFull(r, h.PrevBlock[:]); err != nil {
		return Header{}, ErrBlockTruncated
	}
	if _, err := io.ReadFull(r, h.MerkleRoot[:]); err != nil {
		return Header{}, ErrBlockTruncated
	}
	if h.Time, err = readInt64(r); err != nil {
		return Header{}, err
	}
	if h.Height, err = readInt64(r); err != nil {
		return Header{}, err
	}
	if h.MinerPubKey, err = readVarBytes(r, 1024); err != nil {
		return Header{}, err
	}
	if h.Signature, err = readVarBytes(r, 1024); err != nil {
		return Header{}, err
	}
	return h, nil
}

// DeserializeBlock parses a block produced by Serialize.
func DeserializeBlock(data []byte) (*Block, error) {
	r := bytes.NewReader(data)
	var b Block
	var err error
	if b.Header, err = readHeader(r); err != nil {
		return nil, err
	}
	nTxs, err := readVarInt(r)
	if err != nil {
		return nil, err
	}
	if nTxs == 0 {
		return nil, ErrNoTxs
	}
	if nTxs > 1_000_000 {
		return nil, errors.New("chain: implausible transaction count")
	}
	b.Txs = make([]*Tx, nTxs)
	for i := range b.Txs {
		raw, err := readVarBytes(r, maxTxSize)
		if err != nil {
			return nil, err
		}
		tx, err := DeserializeTx(raw)
		if err != nil {
			return nil, fmt.Errorf("tx %d: %w", i, err)
		}
		b.Txs[i] = tx
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after block", r.Len())
	}
	return &b, nil
}
