package chain

import (
	"container/list"
	"sync"

	"bcwan/internal/bccrypto"
	"bcwan/internal/script"
	"bcwan/internal/telemetry"
)

// sigCacheKey identifies one successfully verified (transaction, input,
// locking script) triple. The transaction ID commits to the unlocking
// script, so a hit proves the exact script pair executed cleanly before —
// a mempool-admitted input needs no re-verification at block connect.
type sigCacheKey struct {
	TxID  Hash
	Index uint32
	Lock  Hash
}

// lockHash condenses a locking script to a fixed-size cache key
// component.
func lockHash(lock script.Script) Hash {
	return Hash(bccrypto.DoubleSHA256(lock))
}

// SigCache is a fixed-capacity LRU cache of successful script
// verifications. It is safe for concurrent use by the validation worker
// pool, the mempool and the RPC server.
type SigCache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recently used; values are sigCacheKey
	idx map[sigCacheKey]*list.Element

	// Telemetry counters; nil (a no-op) until SetMetrics wires them.
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
}

// DefaultSigCacheSize bounds the verification cache. At ~72 bytes per
// entry this is a few megabytes — enough to cover several blocks' worth
// of inputs at MaxBlockTxs=1000.
const DefaultSigCacheSize = 1 << 16

// NewSigCache creates a cache holding up to capacity verified entries.
// A capacity <= 0 yields a disabled cache (every lookup misses).
func NewSigCache(capacity int) *SigCache {
	return &SigCache{
		cap: capacity,
		lru: list.New(),
		idx: make(map[sigCacheKey]*list.Element),
	}
}

// SetMetrics wires hit/miss/eviction counters (typically registered by
// Chain.Instrument). Any may be nil; call before concurrent use.
func (c *SigCache) SetMetrics(hits, misses, evictions *telemetry.Counter) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = hits, misses, evictions
}

// Contains reports whether the entry was verified before, refreshing its
// recency on a hit.
func (c *SigCache) Contains(key sigCacheKey) bool {
	if c == nil || c.cap <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if ok {
		c.lru.MoveToFront(el)
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return ok
}

// Add records a successful verification, evicting the least recently
// used entry when full.
func (c *SigCache) Add(key sigCacheKey) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.idx, oldest.Value.(sigCacheKey))
		c.evictions.Inc()
	}
	c.idx[key] = c.lru.PushFront(key)
}

// Len reports the number of cached verifications.
func (c *SigCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
