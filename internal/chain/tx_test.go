package chain

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"bcwan/internal/script"
)

func sampleTx() *Tx {
	return &Tx{
		Version: 1,
		Inputs: []TxIn{
			{
				Prev:   OutPoint{TxID: Hash{0x01, 0x02}, Index: 3},
				Unlock: script.NewBuilder().AddData([]byte("sig")).AddData([]byte("pub")).Script(),
			},
		},
		Outputs: []TxOut{
			{Value: 1000, Lock: script.PayToPubKeyHash([20]byte{0xaa})},
			{Value: 0, Lock: script.NullData([]byte("ip=192.0.2.1:7000"))},
		},
		LockTime: 42,
	}
}

func TestTxSerializeRoundTrip(t *testing.T) {
	tx := sampleTx()
	data := tx.Serialize()
	back, err := DeserializeTx(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Serialize(), data) {
		t.Fatal("round trip changed serialization")
	}
	if back.ID() != tx.ID() {
		t.Fatal("round trip changed ID")
	}
	if back.LockTime != 42 || back.Version != 1 {
		t.Fatalf("fields lost: %+v", back)
	}
}

func TestTxSerializeRoundTripQuick(t *testing.T) {
	f := func(value uint64, lockTime int64, unlock, lock []byte, idx uint32, seed [32]byte) bool {
		if len(unlock) > 500 {
			unlock = unlock[:500]
		}
		if len(lock) > 500 {
			lock = lock[:500]
		}
		tx := &Tx{
			Version:  2,
			Inputs:   []TxIn{{Prev: OutPoint{TxID: Hash(seed), Index: idx}, Unlock: unlock}},
			Outputs:  []TxOut{{Value: value % maxMoney, Lock: lock}},
			LockTime: lockTime,
		}
		back, err := DeserializeTx(tx.Serialize())
		return err == nil && back.ID() == tx.ID()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeserializeTxRejects(t *testing.T) {
	good := sampleTx().Serialize()
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0x00),
		"too large": make([]byte, maxTxSize+1),
	}
	for name, data := range cases {
		if _, err := DeserializeTx(data); err == nil {
			t.Errorf("%s: invalid encoding accepted", name)
		}
	}
}

func TestTxIDUniqueness(t *testing.T) {
	a := sampleTx()
	b := sampleTx()
	b.Outputs[0].Value++
	if a.ID() == b.ID() {
		t.Fatal("different transactions share an ID")
	}
}

func TestIsCoinbase(t *testing.T) {
	coinbase := &Tx{
		Inputs:  []TxIn{{Prev: OutPoint{Index: coinbaseIndex}}},
		Outputs: []TxOut{{Value: 50}},
	}
	if !coinbase.IsCoinbase() {
		t.Fatal("coinbase not recognized")
	}
	if sampleTx().IsCoinbase() {
		t.Fatal("regular tx recognized as coinbase")
	}
}

func TestSigHashCommitsToOutputs(t *testing.T) {
	lock := script.PayToPubKeyHash([20]byte{1})
	a := sampleTx()
	b := sampleTx()
	b.Outputs[0].Value = 999

	if a.SigHash(0, lock) == b.SigHash(0, lock) {
		t.Fatal("sighash does not commit to outputs")
	}
}

func TestSigHashIndependentOfOtherUnlocks(t *testing.T) {
	lock := script.PayToPubKeyHash([20]byte{1})
	a := sampleTx()
	a.Inputs = append(a.Inputs, TxIn{Prev: OutPoint{TxID: Hash{9}, Index: 1}})
	b := &Tx{Version: a.Version, Inputs: make([]TxIn, len(a.Inputs)), Outputs: a.Outputs, LockTime: a.LockTime}
	copy(b.Inputs, a.Inputs)
	b.Inputs[1].Unlock = script.Script{0x01, 0xff} // different sibling unlock

	if a.SigHash(0, lock) != b.SigHash(0, lock) {
		t.Fatal("sighash depends on sibling unlocking scripts")
	}
}

func TestSigHashCommitsToInputIndex(t *testing.T) {
	lock := script.PayToPubKeyHash([20]byte{1})
	tx := sampleTx()
	tx.Inputs = append(tx.Inputs, TxIn{Prev: OutPoint{TxID: Hash{9}, Index: 1}})
	if tx.SigHash(0, lock) == tx.SigHash(1, lock) {
		t.Fatal("sighash does not commit to input index")
	}
}

func TestHashFromString(t *testing.T) {
	h := Hash{0xde, 0xad}
	back, err := HashFromString(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("hash string round trip mismatch")
	}
	if _, err := HashFromString("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := HashFromString("abcd"); err == nil {
		t.Error("short hash accepted")
	}
}

func TestVarIntRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xfc, 0xfd, 0xffff, 0x10000, 0xffffffff, 0x100000000, 1 << 60} {
		var buf bytes.Buffer
		writeVarInt(&buf, v)
		got, err := readVarInt(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("readVarInt(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("varint round trip %d -> %d", v, got)
		}
	}
}

func TestVerifyInputOutOfRange(t *testing.T) {
	tx := sampleTx()
	if err := tx.VerifyInput(5, nil); err == nil {
		t.Fatal("out-of-range input accepted")
	}
}

func TestCheckTxSanity(t *testing.T) {
	valid := sampleTx()
	if err := CheckTxSanity(valid); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}

	empty := &Tx{}
	if err := CheckTxSanity(empty); !errors.Is(err, ErrEmptyTx) {
		t.Errorf("empty tx err = %v, want ErrEmptyTx", err)
	}

	overflow := sampleTx()
	overflow.Outputs[0].Value = maxMoney + 1
	if err := CheckTxSanity(overflow); !errors.Is(err, ErrValueOverflow) {
		t.Errorf("overflow err = %v, want ErrValueOverflow", err)
	}

	dup := sampleTx()
	dup.Inputs = append(dup.Inputs, dup.Inputs[0])
	if err := CheckTxSanity(dup); !errors.Is(err, ErrDuplicateInput) {
		t.Errorf("dup input err = %v, want ErrDuplicateInput", err)
	}

	zeroPrev := sampleTx()
	zeroPrev.Inputs[0].Prev = OutPoint{} // zero txid but not coinbase index
	if err := CheckTxSanity(zeroPrev); !errors.Is(err, ErrBadCoinbase) {
		t.Errorf("zero prev err = %v, want ErrBadCoinbase", err)
	}
}
