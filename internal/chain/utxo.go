package chain

import (
	"errors"
	"fmt"

	"bcwan/internal/script"
)

// UTXOEntry is one unspent output plus the metadata validation needs.
type UTXOEntry struct {
	Out      TxOut
	Height   int64
	Coinbase bool
}

// UTXOSet is the set of unspent transaction outputs. It is not safe for
// concurrent use; Chain guards it with its own lock.
type UTXOSet struct {
	entries map[OutPoint]UTXOEntry
}

// UTXO errors.
var (
	// ErrMissingUTXO reports a spend of an unknown or already spent
	// output.
	ErrMissingUTXO = errors.New("chain: referenced output missing or spent")
	// ErrDuplicateUTXO reports re-creation of an existing outpoint.
	ErrDuplicateUTXO = errors.New("chain: duplicate outpoint")
)

// NewUTXOSet returns an empty set.
func NewUTXOSet() *UTXOSet {
	return &UTXOSet{entries: make(map[OutPoint]UTXOEntry)}
}

// Get looks up an entry.
func (u *UTXOSet) Get(op OutPoint) (UTXOEntry, bool) {
	e, ok := u.entries[op]
	return e, ok
}

// Len reports the number of unspent outputs.
func (u *UTXOSet) Len() int { return len(u.entries) }

// TotalValue sums all unspent output values — conserved modulo coinbase
// subsidies and fees, an invariant the tests assert.
func (u *UTXOSet) TotalValue() uint64 {
	var sum uint64
	for _, e := range u.entries {
		sum += e.Out.Value
	}
	return sum
}

// Clone deep-copies the set (scripts are immutable and shared).
func (u *UTXOSet) Clone() *UTXOSet {
	out := &UTXOSet{entries: make(map[OutPoint]UTXOEntry, len(u.entries))}
	for k, v := range u.entries {
		out.entries[k] = v
	}
	return out
}

// ApplyTx spends the transaction's inputs and creates its outputs.
// OP_RETURN outputs are never added to the set (they are unspendable).
func (u *UTXOSet) ApplyTx(tx *Tx, height int64) error {
	if !tx.IsCoinbase() {
		for _, in := range tx.Inputs {
			if _, ok := u.entries[in.Prev]; !ok {
				return fmt.Errorf("%w: %s", ErrMissingUTXO, in.Prev)
			}
			delete(u.entries, in.Prev)
		}
	}
	id := tx.ID()
	for i, out := range tx.Outputs {
		if script.Classify(out.Lock) == script.ClassOpReturn {
			continue
		}
		op := OutPoint{TxID: id, Index: uint32(i)}
		if _, ok := u.entries[op]; ok {
			return fmt.Errorf("%w: %s", ErrDuplicateUTXO, op)
		}
		u.entries[op] = UTXOEntry{Out: out, Height: height, Coinbase: tx.IsCoinbase()}
	}
	return nil
}

// FindByPubKeyHash returns the outpoints of all P2PKH outputs paying the
// given hash — the wallet's coin selection source.
func (u *UTXOSet) FindByPubKeyHash(hash [script.HashLen]byte) []OutPoint {
	var out []OutPoint
	for op, e := range u.entries {
		h, err := script.ExtractP2PKHHash(e.Out.Lock)
		if err == nil && h == hash {
			out = append(out, op)
		}
	}
	return out
}

// BalanceOf sums the P2PKH outputs paying the given hash.
func (u *UTXOSet) BalanceOf(hash [script.HashLen]byte) uint64 {
	var sum uint64
	for _, op := range u.FindByPubKeyHash(hash) {
		sum += u.entries[op].Out.Value
	}
	return sum
}
