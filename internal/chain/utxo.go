package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"bcwan/internal/script"
)

// UTXOEntry is one unspent output plus the metadata validation needs.
type UTXOEntry struct {
	Out      TxOut
	Height   int64
	Coinbase bool
}

// The UTXO map is sharded by outpoint hash so block connect and
// disconnect can apply per-shard mutation streams on independent
// goroutines (connect_parallel.go). The count is a power of two so the
// shard of an outpoint is a mask, not a modulo.
const (
	utxoShardBits  = 4
	utxoShardCount = 1 << utxoShardBits
	utxoShardMask  = utxoShardCount - 1
)

// shardIndex maps an outpoint to its shard. TxIDs are double-SHA256
// outputs, so their leading bytes are already uniformly distributed;
// folding in the output index spreads the outputs of one transaction
// across shards.
func shardIndex(op OutPoint) int {
	h := binary.LittleEndian.Uint32(op.TxID[:4]) ^ op.Index
	return int(h & utxoShardMask)
}

// utxoShard is one partition of the set. The entries map is allocated
// lazily on first insert so empty sets stay cheap to create.
//
// Lock discipline: the shard mutex makes single-outpoint operations safe
// under concurrent readers, and the parallel connect/disconnect paths
// hold it once per shard for a whole per-block mutation stream. Code
// never holds two shard locks at once — every operation resolves to
// exactly one shard — so there is no inter-shard lock order to get
// wrong; aggregate operations (Len, Clone, Serialize, …) visit shards
// one at a time in ascending index order.
type utxoShard struct {
	mu      sync.RWMutex
	entries map[OutPoint]UTXOEntry
}

// get looks an entry up without locking; the caller holds the shard
// lock (or has exclusive ownership of the shard).
func (s *utxoShard) get(op OutPoint) (UTXOEntry, bool) {
	e, ok := s.entries[op]
	return e, ok
}

// put inserts without locking, allocating the map on first use.
func (s *utxoShard) put(op OutPoint, e UTXOEntry) {
	if s.entries == nil {
		s.entries = make(map[OutPoint]UTXOEntry)
	}
	s.entries[op] = e
}

// del removes without locking.
func (s *utxoShard) del(op OutPoint) {
	delete(s.entries, op)
}

// UTXOSet is the set of unspent transaction outputs, sharded by
// outpoint hash. Single-outpoint operations take the owning shard's
// lock, so the set is safe for concurrent use; the chain additionally
// serializes all mutation behind its own lock, which is what lets the
// parallel connect path hand disjoint shards to workers without
// contending with outside readers.
type UTXOSet struct {
	shards [utxoShardCount]utxoShard
}

// UTXO errors.
var (
	// ErrMissingUTXO reports a spend of an unknown or already spent
	// output.
	ErrMissingUTXO = errors.New("chain: referenced output missing or spent")
	// ErrDuplicateUTXO reports re-creation of an existing outpoint.
	ErrDuplicateUTXO = errors.New("chain: duplicate outpoint")
)

// NewUTXOSet returns an empty set.
func NewUTXOSet() *UTXOSet {
	return &UTXOSet{}
}

// shardFor returns the shard owning an outpoint.
func (u *UTXOSet) shardFor(op OutPoint) *utxoShard {
	return &u.shards[shardIndex(op)]
}

// Get looks up an entry.
func (u *UTXOSet) Get(op OutPoint) (UTXOEntry, bool) {
	s := u.shardFor(op)
	s.mu.RLock()
	e, ok := s.get(op)
	s.mu.RUnlock()
	return e, ok
}

// Len reports the number of unspent outputs.
func (u *UTXOSet) Len() int {
	n := 0
	for i := range u.shards {
		s := &u.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// TotalValue sums all unspent output values — conserved modulo coinbase
// subsidies and fees, an invariant the tests assert.
func (u *UTXOSet) TotalValue() uint64 {
	var sum uint64
	for i := range u.shards {
		s := &u.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			sum += e.Out.Value
		}
		s.mu.RUnlock()
	}
	return sum
}

// Clone deep-copies the set (scripts are immutable and shared). The
// copy preserves shard placement, so clone-and-compare paths stay
// shard-by-shard.
func (u *UTXOSet) Clone() *UTXOSet {
	out := &UTXOSet{}
	for i := range u.shards {
		s := &u.shards[i]
		s.mu.RLock()
		if len(s.entries) > 0 {
			dst := make(map[OutPoint]UTXOEntry, len(s.entries))
			for k, v := range s.entries {
				dst[k] = v
			}
			out.shards[i].entries = dst
		}
		s.mu.RUnlock()
	}
	return out
}

// ApplyTx spends the transaction's inputs and creates its outputs.
// OP_RETURN outputs are never added to the set (they are unspendable).
// On error the set may be left with a prefix of the mutation applied,
// exactly as the pre-shard implementation did; callers that need
// rollback use ApplyTxUndo.
func (u *UTXOSet) ApplyTx(tx *Tx, height int64) error {
	if !tx.IsCoinbase() {
		for _, in := range tx.Inputs {
			s := u.shardFor(in.Prev)
			s.mu.Lock()
			if _, ok := s.get(in.Prev); !ok {
				s.mu.Unlock()
				return fmt.Errorf("%w: %s", ErrMissingUTXO, in.Prev)
			}
			s.del(in.Prev)
			s.mu.Unlock()
		}
	}
	id := tx.ID()
	for i, out := range tx.Outputs {
		if script.Classify(out.Lock) == script.ClassOpReturn {
			continue
		}
		op := OutPoint{TxID: id, Index: uint32(i)}
		s := u.shardFor(op)
		s.mu.Lock()
		if _, ok := s.get(op); ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrDuplicateUTXO, op)
		}
		s.put(op, UTXOEntry{Out: out, Height: height, Coinbase: tx.IsCoinbase()})
		s.mu.Unlock()
	}
	return nil
}

// FindByPubKeyHash returns the outpoints of all P2PKH outputs paying the
// given hash — the wallet's coin selection source.
func (u *UTXOSet) FindByPubKeyHash(hash [script.HashLen]byte) []OutPoint {
	var out []OutPoint
	for i := range u.shards {
		s := &u.shards[i]
		s.mu.RLock()
		for op, e := range s.entries {
			h, err := script.ExtractP2PKHHash(e.Out.Lock)
			if err == nil && h == hash {
				out = append(out, op)
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// BalanceOf sums the P2PKH outputs paying the given hash.
func (u *UTXOSet) BalanceOf(hash [script.HashLen]byte) uint64 {
	var sum uint64
	for _, op := range u.FindByPubKeyHash(hash) {
		if e, ok := u.Get(op); ok {
			sum += e.Out.Value
		}
	}
	return sum
}
