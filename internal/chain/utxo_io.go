package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// UTXO set serialization, used by the daemon's snapshot store. The
// encoding is deterministic (entries sorted by outpoint) so identical
// sets produce identical bytes — which lets the restore path cross-check
// the replayed chain state against the snapshot with a plain compare.
//
// With the sharded set, the global sort is produced shard-aware: each
// shard's entries are collected and sorted concurrently (shards
// partition by outpoint hash, not by range), then the per-shard sorted
// runs are merged. The merged order — and therefore every serialized
// byte and the SnapshotHash over it — is identical to the pre-shard
// single-map encoding.

// ErrBadUTXOData reports an unreadable serialized UTXO set.
var ErrBadUTXOData = errors.New("chain: malformed serialized UTXO set")

// utxoRec is one collected entry: the outpoint plus its value, so the
// merge step never has to re-lock shards.
type utxoRec struct {
	op OutPoint
	e  UTXOEntry
}

// outpointLess is the canonical serialization order: big-endian
// lexicographic TxID, then output index.
func outpointLess(a, b OutPoint) bool {
	if c := bytes.Compare(a.TxID[:], b.TxID[:]); c != 0 {
		return c < 0
	}
	return a.Index < b.Index
}

// sortedRecs snapshots every shard into a per-shard slice sorted by
// outpoint, fanning the sorts out across cores, and returns the runs
// plus the total entry count.
func (u *UTXOSet) sortedRecs() ([][]utxoRec, int) {
	runs := make([][]utxoRec, utxoShardCount)
	workers := runtime.GOMAXPROCS(0)
	if workers > utxoShardCount {
		workers = utxoShardCount
	}
	if workers < 1 {
		workers = 1
	}
	var next sync.Mutex
	idx := 0
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= utxoShardCount {
					return
				}
				s := &u.shards[i]
				s.mu.RLock()
				recs := make([]utxoRec, 0, len(s.entries))
				for op, e := range s.entries {
					recs = append(recs, utxoRec{op: op, e: e})
				}
				s.mu.RUnlock()
				sort.Slice(recs, func(a, b int) bool { return outpointLess(recs[a].op, recs[b].op) })
				runs[i] = recs
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	return runs, total
}

// SerializeUTXO encodes the set deterministically: an entry count
// followed by entries in outpoint order.
func (u *UTXOSet) SerializeUTXO() []byte {
	runs, total := u.sortedRecs()

	var buf bytes.Buffer
	var scratch [8]byte
	binary.BigEndian.PutUint32(scratch[:4], uint32(total))
	buf.Write(scratch[:4])

	// Merge the sorted per-shard runs. Shard count is small and fixed,
	// so a linear min-scan over the run heads beats heap bookkeeping.
	heads := make([]int, len(runs))
	for written := 0; written < total; written++ {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best < 0 || outpointLess(r[heads[i]].op, runs[best][heads[best]].op) {
				best = i
			}
		}
		rec := runs[best][heads[best]]
		heads[best]++

		buf.Write(rec.op.TxID[:])
		binary.BigEndian.PutUint32(scratch[:4], rec.op.Index)
		buf.Write(scratch[:4])
		binary.BigEndian.PutUint64(scratch[:], uint64(rec.e.Height))
		buf.Write(scratch[:])
		if rec.e.Coinbase {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		binary.BigEndian.PutUint64(scratch[:], rec.e.Out.Value)
		buf.Write(scratch[:])
		binary.BigEndian.PutUint32(scratch[:4], uint32(len(rec.e.Out.Lock)))
		buf.Write(scratch[:4])
		buf.Write(rec.e.Out.Lock)
	}
	return buf.Bytes()
}

// DeserializeUTXO decodes a set produced by SerializeUTXO, reading from
// r and leaving any trailing bytes unconsumed.
func DeserializeUTXO(r io.Reader) (*UTXOSet, error) {
	var scratch [8]byte
	if _, err := io.ReadFull(r, scratch[:4]); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadUTXOData, err)
	}
	count := binary.BigEndian.Uint32(scratch[:4])
	u := NewUTXOSet()
	for i := uint32(0); i < count; i++ {
		var op OutPoint
		if _, err := io.ReadFull(r, op.TxID[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		op.Index = binary.BigEndian.Uint32(scratch[:4])
		var e UTXOEntry
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		e.Height = int64(binary.BigEndian.Uint64(scratch[:]))
		if _, err := io.ReadFull(r, scratch[:1]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		e.Coinbase = scratch[0] == 1
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		e.Out.Value = binary.BigEndian.Uint64(scratch[:])
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		lockLen := binary.BigEndian.Uint32(scratch[:4])
		if lockLen > maxTxSize {
			return nil, fmt.Errorf("%w: entry %d: lock of %d bytes", ErrBadUTXOData, i, lockLen)
		}
		if lockLen > 0 {
			e.Out.Lock = make([]byte, lockLen)
			if _, err := io.ReadFull(r, e.Out.Lock); err != nil {
				return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
			}
		}
		if !u.createLocked(op, e) {
			return nil, fmt.Errorf("%w: duplicate outpoint %s", ErrBadUTXOData, op)
		}
	}
	return u, nil
}
