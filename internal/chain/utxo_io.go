package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// UTXO set serialization, used by the daemon's snapshot store. The
// encoding is deterministic (entries sorted by outpoint) so identical
// sets produce identical bytes — which lets the restore path cross-check
// the replayed chain state against the snapshot with a plain compare.

// ErrBadUTXOData reports an unreadable serialized UTXO set.
var ErrBadUTXOData = errors.New("chain: malformed serialized UTXO set")

// SerializeUTXO encodes the set deterministically: an entry count
// followed by entries in outpoint order.
func (u *UTXOSet) SerializeUTXO() []byte {
	ops := make([]OutPoint, 0, len(u.entries))
	for op := range u.entries {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		if c := bytes.Compare(ops[i].TxID[:], ops[j].TxID[:]); c != 0 {
			return c < 0
		}
		return ops[i].Index < ops[j].Index
	})
	var buf bytes.Buffer
	var scratch [8]byte
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(ops)))
	buf.Write(scratch[:4])
	for _, op := range ops {
		e := u.entries[op]
		buf.Write(op.TxID[:])
		binary.BigEndian.PutUint32(scratch[:4], op.Index)
		buf.Write(scratch[:4])
		binary.BigEndian.PutUint64(scratch[:], uint64(e.Height))
		buf.Write(scratch[:])
		if e.Coinbase {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		binary.BigEndian.PutUint64(scratch[:], e.Out.Value)
		buf.Write(scratch[:])
		binary.BigEndian.PutUint32(scratch[:4], uint32(len(e.Out.Lock)))
		buf.Write(scratch[:4])
		buf.Write(e.Out.Lock)
	}
	return buf.Bytes()
}

// DeserializeUTXO decodes a set produced by SerializeUTXO, reading from
// r and leaving any trailing bytes unconsumed.
func DeserializeUTXO(r io.Reader) (*UTXOSet, error) {
	var scratch [8]byte
	if _, err := io.ReadFull(r, scratch[:4]); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadUTXOData, err)
	}
	count := binary.BigEndian.Uint32(scratch[:4])
	u := NewUTXOSet()
	for i := uint32(0); i < count; i++ {
		var op OutPoint
		if _, err := io.ReadFull(r, op.TxID[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		op.Index = binary.BigEndian.Uint32(scratch[:4])
		var e UTXOEntry
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		e.Height = int64(binary.BigEndian.Uint64(scratch[:]))
		if _, err := io.ReadFull(r, scratch[:1]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		e.Coinbase = scratch[0] == 1
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		e.Out.Value = binary.BigEndian.Uint64(scratch[:])
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
		}
		lockLen := binary.BigEndian.Uint32(scratch[:4])
		if lockLen > maxTxSize {
			return nil, fmt.Errorf("%w: entry %d: lock of %d bytes", ErrBadUTXOData, i, lockLen)
		}
		if lockLen > 0 {
			e.Out.Lock = make([]byte, lockLen)
			if _, err := io.ReadFull(r, e.Out.Lock); err != nil {
				return nil, fmt.Errorf("%w: entry %d: %v", ErrBadUTXOData, i, err)
			}
		}
		if _, dup := u.entries[op]; dup {
			return nil, fmt.Errorf("%w: duplicate outpoint %s", ErrBadUTXOData, op)
		}
		u.entries[op] = e
	}
	return u, nil
}
