package chain

import (
	"errors"
	"fmt"
	"testing"
)

// TestMempoolOverlayIncrementalAdmission drives the persistent-overlay
// path: a long chain of unconfirmed spends admits one by one (each new
// tx validates against the overlay extended by its predecessors), and
// conflict/duplicate rejection still holds.
func TestMempoolOverlayIncrementalAdmission(t *testing.T) {
	utxo, txs := buildChainedSpends(t, 16, 2)
	params := noVerifyParams()
	m := NewMempool()
	for i, tx := range txs {
		if err := m.Accept(tx, utxo, 0, params); err != nil {
			t.Fatalf("accept chained tx %d: %v", i, err)
		}
	}
	if m.Len() != len(txs) {
		t.Fatalf("pool holds %d, want %d", m.Len(), len(txs))
	}
	// Double spend of the first link is a conflict.
	conflict := &Tx{
		Version: 1,
		Inputs:  txs[0].Inputs,
		Outputs: []TxOut{{Value: 999, Lock: txs[0].Outputs[0].Lock}},
	}
	if err := m.Accept(conflict, utxo, 0, params); !errors.Is(err, ErrMempoolConflict) {
		t.Fatalf("conflict err = %v, want ErrMempoolConflict", err)
	}
	if err := m.Accept(txs[3], utxo, 0, params); !errors.Is(err, ErrAlreadyPooled) {
		t.Fatalf("duplicate err = %v, want ErrAlreadyPooled", err)
	}
	// A fresh spend of the second funding output also connects — the
	// overlay covers the base set, not just the chained branch.
	fundSpend := &Tx{
		Version: 1,
		Inputs:  []TxIn{{Prev: OutPoint{TxID: fundingTxID(t, utxo, txs), Index: 1}}},
		Outputs: []TxOut{{Value: 1000, Lock: txs[0].Outputs[0].Lock}},
	}
	if err := m.Accept(fundSpend, utxo, 0, params); err != nil {
		t.Fatalf("accept independent spend: %v", err)
	}
}

// fundingTxID recovers the funding txid from the first chained tx's
// input (buildChainedSpends spends funding output 0 first).
func fundingTxID(t *testing.T, utxo *UTXOSet, txs []*Tx) Hash {
	t.Helper()
	if len(txs) == 0 {
		t.Fatal("no fixture txs")
	}
	return txs[0].Inputs[0].Prev.TxID
}

// TestMempoolOverlayInvalidation checks the rebuild triggers: removal,
// height movement and base replacement must all invalidate the
// incremental overlay rather than validating against stale state.
func TestMempoolOverlayInvalidation(t *testing.T) {
	utxo, txs := buildChainedSpends(t, 4, 1)
	params := noVerifyParams()
	m := NewMempool()
	for _, tx := range txs[:2] {
		if err := m.Accept(tx, utxo, 0, params); err != nil {
			t.Fatal(err)
		}
	}

	// Confirm both: the pool empties and its outputs leave the overlay,
	// so the next chained tx no longer connects against this base.
	m.RemoveConfirmed(&Block{Txs: txs[:2]})
	if m.Len() != 0 {
		t.Fatalf("pool holds %d after confirmation", m.Len())
	}
	if err := m.Accept(txs[2], utxo, 0, params); err == nil {
		t.Fatal("tx chained on a confirmed-but-unapplied parent was admitted from a stale overlay")
	}

	// Apply the confirmed txs to an advanced base: acceptance resumes.
	for _, tx := range txs[:2] {
		if err := utxo.ApplyTx(tx, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Accept(txs[2], utxo, 1, params); err != nil {
		t.Fatalf("accept after base advance: %v", err)
	}

	// A different base instance (chain swap) is also detected.
	other := NewUTXOSet()
	if err := m.Accept(txs[3], other, 1, params); err == nil {
		t.Fatal("tx admitted against an empty replacement base")
	}
}

// TestMempoolOrderTombstones checks that removal tombstones keep
// arrival order for the survivors and that compaction bounds the order
// slice.
func TestMempoolOrderTombstones(t *testing.T) {
	utxo, seed := buildChainedSpends(t, 1, 64)
	fundID := seed[0].Inputs[0].Prev.TxID
	lock := seed[0].Outputs[0].Lock
	params := noVerifyParams()
	m := NewMempool()
	txs := make([]*Tx, 64)
	for i := range txs {
		txs[i] = &Tx{
			Version: 1,
			Inputs:  []TxIn{{Prev: OutPoint{TxID: fundID, Index: uint32(i)}}},
			Outputs: []TxOut{{Value: 1000, Lock: lock}},
		}
		if err := m.Accept(txs[i], utxo, 0, params); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}

	// Remove every even-index tx; survivors keep arrival order.
	var confirmed []*Tx
	for i := 0; i < len(txs); i += 2 {
		confirmed = append(confirmed, txs[i])
	}
	m.RemoveConfirmed(&Block{Txs: confirmed})

	sel := m.Select(1000)
	if len(sel) != len(txs)/2 {
		t.Fatalf("Select returned %d, want %d", len(sel), len(txs)/2)
	}
	for i, tx := range sel {
		if tx.ID() != txs[2*i+1].ID() {
			t.Fatalf("Select[%d] out of arrival order", i)
		}
	}

	// Tombstones exceeded half the slice, so compaction ran.
	m.mu.Lock()
	tomb, orderLen, idxLen := m.tomb, len(m.order), len(m.orderIdx)
	m.mu.Unlock()
	if tomb != 0 || orderLen != len(txs)/2 || idxLen != len(txs)/2 {
		t.Fatalf("after compaction: tomb=%d order=%d idx=%d, want 0/%d/%d",
			tomb, orderLen, idxLen, len(txs)/2, len(txs)/2)
	}
}

// BenchmarkMempoolAccept measures a burst of n chained admissions into
// one pool — the path that was O(n²) when every Accept rebuilt the
// overlay from the whole pool. VerifyScripts is off so the numbers
// isolate pool bookkeeping from ECDSA.
func BenchmarkMempoolAccept(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("pool=%d", size), func(b *testing.B) {
			utxo, txs := buildChainedSpends(b, size, 1)
			params := noVerifyParams()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := NewMempool()
				b.StartTimer()
				for _, tx := range txs {
					if err := m.Accept(tx, utxo, 0, params); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMempoolRemoveConfirmed measures confirming a large block out
// of a full pool — quadratic before order removal was tombstoned.
func BenchmarkMempoolRemoveConfirmed(b *testing.B) {
	for _, size := range []int{256, 1024} {
		b.Run(fmt.Sprintf("pool=%d", size), func(b *testing.B) {
			utxo, txs := buildChainedSpends(b, size, 1)
			params := noVerifyParams()
			blk := &Block{Txs: txs}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := NewMempool()
				for _, tx := range txs {
					if err := m.Accept(tx, utxo, 0, params); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				m.RemoveConfirmed(blk)
			}
		})
	}
}
