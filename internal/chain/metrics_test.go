package chain

import (
	"crypto/rand"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/telemetry"
)

// metricValue finds one series in a snapshot by name (ignoring labels
// when want is empty) and returns its value.
func metricValue(t *testing.T, snap []telemetry.Metric, name string, labels map[string]string) float64 {
	t.Helper()
	for _, m := range snap {
		if m.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if m.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return m.Value
		}
	}
	t.Fatalf("metric %s %v not in snapshot", name, labels)
	return 0
}

func TestChainInstrumentation(t *testing.T) {
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := GenesisBlock(nil)
	c, err := New(DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	c.AuthorizeMiner(minerKey.PublicBytes())
	pool := NewMempool()
	pool.UseVerifier(c.Verifier())
	pool.Instrument(reg)
	miner := NewMiner(minerKey, c, pool, rand.Reader)
	miner.Instrument(reg)

	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		now = now.Add(15 * time.Second)
		if _, err := miner.Mine(now); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := metricValue(t, snap, "bcwan_chain_blocks_connected_total", nil); got != 3 {
		t.Fatalf("blocks connected = %v, want 3", got)
	}
	if got := metricValue(t, snap, "bcwan_miner_blocks_mined_total", nil); got != 3 {
		t.Fatalf("blocks mined = %v, want 3", got)
	}
	if got := metricValue(t, snap, "bcwan_chain_utxo_size", nil); got != 4 {
		// Genesis burn output + three coinbases.
		t.Fatalf("utxo size = %v, want 4", got)
	}
	// The connect histogram observed one value per block.
	for _, m := range snap {
		if m.Name == "bcwan_chain_block_connect_seconds" {
			if m.Histogram == nil || m.Histogram.Count != 3 {
				t.Fatalf("connect histogram = %+v, want count 3", m.Histogram)
			}
		}
	}

	// A coinbase submission is an invalid-reason mempool reject.
	cbErr := pool.Accept(genesis.Txs[0], c.UTXO(), c.Height(), c.Params())
	if cbErr == nil {
		t.Fatal("coinbase admitted")
	}
	snap = reg.Snapshot()
	if got := metricValue(t, snap, "bcwan_mempool_rejected_total", map[string]string{"reason": "invalid"}); got != 1 {
		t.Fatalf("invalid rejects = %v, want 1", got)
	}
	// All reject reasons are pre-registered even at zero.
	metricValue(t, snap, "bcwan_mempool_rejected_total", map[string]string{"reason": "duplicate"})
	metricValue(t, snap, "bcwan_mempool_rejected_total", map[string]string{"reason": "conflict"})
}

func TestSigCacheMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	ns := reg.Namespace("chain")
	cache := NewSigCache(2)
	cache.SetMetrics(
		ns.Counter("sigcache_hits_total", "hits"),
		ns.Counter("sigcache_misses_total", "misses"),
		ns.Counter("sigcache_evictions_total", "evictions"),
	)
	k1 := sigCacheKey{Index: 1}
	k2 := sigCacheKey{Index: 2}
	k3 := sigCacheKey{Index: 3}
	cache.Contains(k1) // miss
	cache.Add(k1)
	cache.Contains(k1) // hit
	cache.Add(k2)
	cache.Add(k3) // capacity 2: evicts the LRU entry

	snap := reg.Snapshot()
	if got := metricValue(t, snap, "bcwan_chain_sigcache_hits_total", nil); got != 1 {
		t.Fatalf("hits = %v, want 1", got)
	}
	if got := metricValue(t, snap, "bcwan_chain_sigcache_misses_total", nil); got != 1 {
		t.Fatalf("misses = %v, want 1", got)
	}
	if got := metricValue(t, snap, "bcwan_chain_sigcache_evictions_total", nil); got != 1 {
		t.Fatalf("evictions = %v, want 1", got)
	}
}
