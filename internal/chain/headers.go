package chain

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Headers-first synchronization (the Bitcoin getheaders/headers shape,
// adapted to proof of authority): a joining node validates the header
// spine — linkage, height, miner membership and the miner's ECDSA
// signature — before it spends anything on block bodies. Headers are a
// few hundred bytes each, so the spine of a long chain costs megabytes
// where the bodies cost orders of magnitude more, and the spine alone
// pins every block ID the later body download must match.

// Header chain errors.
var (
	// ErrHeaderDisconnected reports a header that does not attach to the
	// spine (unknown parent or wrong height).
	ErrHeaderDisconnected = errors.New("chain: header does not connect")
	// ErrBadHeaderSig reports a header whose miner signature fails, or
	// whose miner is not in the authorized set.
	ErrBadHeaderSig = errors.New("chain: bad header signature or unauthorized miner")
)

// Serialize encodes the header (the same encoding a full block starts
// with, so header IDs match block IDs).
func (h *Header) Serialize() []byte {
	var buf bytes.Buffer
	h.serialize(&buf)
	return buf.Bytes()
}

// DeserializeHeader parses a header produced by Serialize.
func DeserializeHeader(data []byte) (*Header, error) {
	r := bytes.NewReader(data)
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after header", r.Len())
	}
	return &h, nil
}

// HeaderChain is a validated header-only spine, genesis first. It is the
// scratch state of headers-first sync: every appended header is checked
// for linkage, height, miner membership and signature, so the IDs it
// pins are as trustworthy as a fully validated chain's — only the
// transaction contents remain unchecked. Not safe for concurrent use;
// the sync state machine guards it with its own lock.
type HeaderChain struct {
	miners  map[string]bool
	headers []*Header
	ids     []Hash
}

// NewHeaderChain starts a spine at the given genesis block. An empty
// miner set accepts any signed header (mirroring Chain).
func NewHeaderChain(genesis *Block, miners [][]byte) *HeaderChain {
	hc := &HeaderChain{miners: make(map[string]bool)}
	for _, pub := range miners {
		hc.miners[string(pub)] = true
	}
	g := genesis.Header
	hc.headers = append(hc.headers, &g)
	hc.ids = append(hc.ids, genesis.ID())
	return hc
}

// Height returns the spine tip height.
func (hc *HeaderChain) Height() int64 { return int64(len(hc.headers)) - 1 }

// TipID returns the spine tip's block ID.
func (hc *HeaderChain) TipID() Hash { return hc.ids[len(hc.ids)-1] }

// IDAt returns the block ID at the given height.
func (hc *HeaderChain) IDAt(height int64) (Hash, bool) {
	if height < 0 || height >= int64(len(hc.ids)) {
		return Hash{}, false
	}
	return hc.ids[height], true
}

// HeaderAt returns the header at the given height.
func (hc *HeaderChain) HeaderAt(height int64) (*Header, bool) {
	if height < 0 || height >= int64(len(hc.headers)) {
		return nil, false
	}
	return hc.headers[height], true
}

// Headers returns the spine headers from height from through to,
// inclusive (clamped to the spine).
func (hc *HeaderChain) Headers(from, to int64) []*Header {
	if from < 0 {
		from = 0
	}
	if to > hc.Height() {
		to = hc.Height()
	}
	if from > to {
		return nil
	}
	out := make([]*Header, 0, to-from+1)
	for h := from; h <= to; h++ {
		out = append(out, hc.headers[h])
	}
	return out
}

// Locator returns block IDs of the spine, tip first: the last 10
// densely, then doubling the step back to genesis — the standard shape
// that lets a peer find the fork point in O(log height) IDs.
func (hc *HeaderChain) Locator() []Hash {
	var loc []Hash
	step := int64(1)
	for h := hc.Height(); h > 0; h -= step {
		loc = append(loc, hc.ids[h])
		if len(loc) >= 10 {
			step *= 2
		}
	}
	return append(loc, hc.ids[0])
}

// Connect validates a batch of headers against the spine in order and
// appends them. A header already on the spine is skipped; one that
// attaches below the tip (a fork) truncates the spine to its fork point
// before appending, so a peer serving a different best branch replaces
// the local suffix. Returns how many headers were newly appended; on
// error the headers before the bad one remain applied.
func (hc *HeaderChain) Connect(batch []*Header) (int, error) {
	sigOK := hc.verifyBatchSigs(batch)
	added := 0
	for i, h := range batch {
		height := h.Header().Height
		n := int64(len(hc.headers))
		if height <= 0 || height > n {
			return added, fmt.Errorf("%w: height %d on spine of height %d", ErrHeaderDisconnected, height, n-1)
		}
		if height < n && hc.ids[height] == h.ID() {
			continue // already on the spine
		}
		if h.PrevBlock != hc.ids[height-1] {
			return added, fmt.Errorf("%w: height %d parent mismatch", ErrHeaderDisconnected, height)
		}
		if len(hc.miners) > 0 && !hc.miners[string(h.MinerPubKey)] {
			return added, fmt.Errorf("%w: height %d", ErrBadHeaderSig, height)
		}
		if !sigOK[i] {
			return added, fmt.Errorf("%w: height %d", ErrBadHeaderSig, height)
		}
		hc.headers = append(hc.headers[:height], h)
		hc.ids = append(hc.ids[:height], h.ID())
		added++
	}
	return added, nil
}

// verifyBatchSigs checks the batch's miner signatures on all cores.
// ECDSA verification dominates headers-first sync — a 2000-header batch
// is hundreds of milliseconds sequential — and the checks are
// independent of the linkage walk, so they run ahead of it in parallel.
// Headers already on the spine are skipped (their signatures were
// checked when they were first appended); the pre-check against the
// current spine stays valid because batch heights only grow.
func (hc *HeaderChain) verifyBatchSigs(batch []*Header) []bool {
	ok := make([]bool, len(batch))
	todo := make([]int, 0, len(batch))
	n := int64(len(hc.headers))
	for i, h := range batch {
		height := h.Header().Height
		if height > 0 && height < n && hc.ids[height] == h.ID() {
			ok[i] = true // duplicate: skipped by Connect before use
			continue
		}
		todo = append(todo, i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			ok[i] = batch[i].VerifySignature()
		}
		return ok
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(todo) {
					return
				}
				i := todo[j]
				ok[i] = batch[i].VerifySignature()
			}
		}()
	}
	wg.Wait()
	return ok
}

// Header returns h itself; it exists so Connect can treat *Header
// uniformly (and keeps the call sites readable).
func (h *Header) Header() *Header { return h }

// HeadersAfter serves a getheaders request from the chain's best branch:
// it returns up to max headers starting just above the highest locator
// entry found on the best branch (or above genesis when none match).
// Works on pruned chains — header stubs keep their headers.
func (c *Chain) HeadersAfter(locator []Hash, max int) []*Header {
	c.mu.RLock()
	defer c.mu.RUnlock()
	start := int64(1)
	for _, id := range locator {
		b, ok := c.index[id]
		if !ok {
			continue
		}
		h := b.Header.Height
		if h < int64(len(c.best)) && c.best[h] == b {
			start = h + 1
			break
		}
	}
	var out []*Header
	for h := start; h < int64(len(c.best)) && len(out) < max; h++ {
		out = append(out, &c.best[h].Header)
	}
	return out
}

// TipInfo describes one leaf of the block tree, for getchaintips.
type TipInfo struct {
	ID     Hash
	Height int64
	// BranchLen is how many blocks the tip sits off the best branch
	// (0 for the active tip).
	BranchLen int64
	// Active marks the best-branch tip.
	Active bool
}

// Tips returns every chain tip the node knows: the active best tip plus
// the leaf of every side branch, highest first.
func (c *Chain) Tips() []TipInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hasChild := make(map[Hash]bool, len(c.index))
	for _, b := range c.index {
		hasChild[b.Header.PrevBlock] = true
	}
	bestTip := c.best[len(c.best)-1]
	var tips []TipInfo
	for id, b := range c.index {
		if hasChild[id] {
			continue
		}
		info := TipInfo{ID: id, Height: b.Header.Height, Active: b == bestTip}
		if !info.Active {
			// Walk back until the branch rejoins the best branch.
			cur := b
			for {
				h := cur.Header.Height
				if h < int64(len(c.best)) && c.best[h] == cur {
					break
				}
				info.BranchLen++
				parent, ok := c.index[cur.Header.PrevBlock]
				if !ok {
					break
				}
				cur = parent
			}
		}
		tips = append(tips, info)
	}
	// Highest first; active tip wins ties.
	for i := 1; i < len(tips); i++ {
		for j := i; j > 0 && (tips[j].Height > tips[j-1].Height ||
			(tips[j].Height == tips[j-1].Height && tips[j].Active)); j-- {
			tips[j], tips[j-1] = tips[j-1], tips[j]
		}
	}
	return tips
}
