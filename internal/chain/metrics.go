package chain

import (
	"errors"

	"bcwan/internal/telemetry"
)

// Telemetry for the chain package. Each component (chain, mempool,
// miner) grows an Instrument method that registers its metrics under
// the bcwan_<component>_ namespace; uninstrumented components keep a
// nil metrics struct and pay only a nil check per operation, which is
// what keeps BenchmarkBlockConnect's registry-nil baseline honest.
//
// Instrument must be called before the component sees concurrent use
// (in practice: right after construction, before gossip/RPC start).

// chainMetrics is the per-Chain metric set.
type chainMetrics struct {
	connectSeconds     *telemetry.Histogram
	blocksConnected    *telemetry.Counter
	blocksDisconnected *telemetry.Counter
	txsVerified        *telemetry.Counter
	scriptsVerified    *telemetry.Counter
	reorgs             *telemetry.Counter
	reorgDepth         *telemetry.Gauge
	utxoSize           *telemetry.Gauge
	txIndexSize        *telemetry.Gauge
	spenderIndexSize   *telemetry.Gauge
}

func newChainMetrics(reg *telemetry.Registry) *chainMetrics {
	if reg == nil {
		return nil
	}
	ns := reg.Namespace("chain")
	return &chainMetrics{
		connectSeconds: ns.Histogram("block_connect_seconds",
			"Latency of accepting one block into the chain (validation incl. script verification).", nil),
		blocksConnected: ns.Counter("blocks_connected_total",
			"Blocks connected to the block tree."),
		blocksDisconnected: ns.Counter("blocks_disconnected_total",
			"Best-branch blocks disconnected through their undo journals during reorganizations."),
		txsVerified: ns.Counter("txs_verified_total",
			"Non-coinbase transactions validated at block connect."),
		scriptsVerified: ns.Counter("scripts_verified_total",
			"Script pairs submitted for verification at block connect (cache hits included)."),
		reorgs: ns.Counter("reorgs_total",
			"Best-branch reorganizations."),
		reorgDepth: ns.Gauge("reorg_depth",
			"Depth of the most recent reorganization (blocks disconnected)."),
		utxoSize: ns.Gauge("utxo_size",
			"Unspent outputs in the best-branch UTXO set."),
		txIndexSize: ns.Gauge("txindex_size",
			"Transactions in the best-branch txid index (O(1) FindTx)."),
		spenderIndexSize: ns.Gauge("spender_index_size",
			"Spent outpoints in the best-branch spender index (O(1) FindSpender)."),
	}
}

// Instrument registers the chain's metrics (including the shared
// signature cache's hit/miss/eviction counters) in reg. Call once,
// before the chain sees concurrent use; a nil registry is a no-op.
func (c *Chain) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = newChainMetrics(reg)
	c.metrics.utxoSize.Set(int64(c.utxo.Len()))
	c.metrics.txIndexSize.Set(int64(len(c.txIndex)))
	c.metrics.spenderIndexSize.Set(int64(len(c.spenders)))
	ns := reg.Namespace("chain")
	c.verifier.Cache().SetMetrics(
		ns.Counter("sigcache_hits_total", "Signature-cache lookups that skipped re-verification."),
		ns.Counter("sigcache_misses_total", "Signature-cache lookups that required verification."),
		ns.Counter("sigcache_evictions_total", "Signature-cache entries evicted by the LRU bound."),
	)
}

// mempoolMetrics is the per-Mempool metric set. Reject counters are
// pre-registered per reason so the exposition shows the full taxonomy
// at zero.
type mempoolMetrics struct {
	acceptSeconds   *telemetry.Histogram
	admitted        *telemetry.Counter
	rejectDuplicate *telemetry.Counter
	rejectConflict  *telemetry.Counter
	rejectInvalid   *telemetry.Counter
	size            *telemetry.Gauge
}

func newMempoolMetrics(reg *telemetry.Registry) *mempoolMetrics {
	if reg == nil {
		return nil
	}
	ns := reg.Namespace("mempool")
	reject := func(reason string) *telemetry.Counter {
		return ns.Counter("rejected_total",
			"Transactions rejected at admission, by reason.", telemetry.L("reason", reason))
	}
	return &mempoolMetrics{
		acceptSeconds: ns.Histogram("accept_seconds",
			"Latency of one mempool admission (validation incl. script verification).", nil),
		admitted: ns.Counter("admitted_total",
			"Transactions admitted to the mempool."),
		rejectDuplicate: reject("duplicate"),
		rejectConflict:  reject("conflict"),
		rejectInvalid:   reject("invalid"),
		size: ns.Gauge("size",
			"Transactions currently pooled."),
	}
}

// rejectCounter maps an admission error to its reject-reason counter.
func (m *mempoolMetrics) rejectCounter(err error) *telemetry.Counter {
	switch {
	case errors.Is(err, ErrAlreadyPooled):
		return m.rejectDuplicate
	case errors.Is(err, ErrMempoolConflict):
		return m.rejectConflict
	default:
		return m.rejectInvalid
	}
}

// minerMetrics is the per-Miner metric set.
type minerMetrics struct {
	blocksMined     *telemetry.Counter
	assemblySeconds *telemetry.Histogram
}

func newMinerMetrics(reg *telemetry.Registry) *minerMetrics {
	if reg == nil {
		return nil
	}
	ns := reg.Namespace("miner")
	return &minerMetrics{
		blocksMined: ns.Counter("blocks_mined_total",
			"Blocks built, signed and connected by this miner."),
		assemblySeconds: ns.Histogram("assembly_seconds",
			"Latency of assembling and signing one block from the mempool.", nil),
	}
}
