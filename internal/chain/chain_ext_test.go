package chain_test

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// harness wires a chain, mempool, miner and funded wallets.
type harness struct {
	t       *testing.T
	params  chain.Params
	chain   *chain.Chain
	mempool *chain.Mempool
	miner   *chain.Miner
	minerW  *wallet.Wallet
	alice   *wallet.Wallet
	bob     *wallet.Wallet
	now     time.Time
}

const initialFunds = 1_000_000

func newHarness(t *testing.T, params chain.Params) *harness {
	t.Helper()
	alice, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{
		alice.PubKeyHash(): initialFunds,
		bob.PubKeyHash():   initialFunds,
	})
	c, err := chain.New(params, genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	return &harness{
		t:       t,
		params:  params,
		chain:   c,
		mempool: pool,
		miner:   chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		minerW:  minerW,
		alice:   alice,
		bob:     bob,
		now:     time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC),
	}
}

func (h *harness) mine() *chain.Block {
	h.t.Helper()
	h.now = h.now.Add(h.params.BlockInterval)
	b, err := h.miner.Mine(h.now)
	if err != nil {
		h.t.Fatal(err)
	}
	return b
}

func (h *harness) accept(tx *chain.Tx) {
	h.t.Helper()
	if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
		h.t.Fatal(err)
	}
}

func TestSimplePaymentFlow(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx)
	h.mine()

	utxo := h.chain.UTXO()
	if got := h.bob.Balance(utxo); got != initialFunds+400 {
		t.Fatalf("bob balance = %d, want %d", got, initialFunds+400)
	}
	if got := h.alice.Balance(utxo); got != initialFunds-410 {
		t.Fatalf("alice balance = %d, want %d", got, initialFunds-410)
	}
	if h.mempool.Len() != 0 {
		t.Fatalf("mempool not drained: %d", h.mempool.Len())
	}
	if conf := h.chain.Confirmations(tx.ID()); conf != 1 {
		t.Fatalf("confirmations = %d, want 1", conf)
	}
}

func TestValueConservation(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	start := h.chain.UTXO().TotalValue()

	for i := 0; i < 5; i++ {
		tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 100, 7)
		if err != nil {
			t.Fatal(err)
		}
		h.accept(tx)
		h.mine()
	}
	// Each block adds exactly reward+fees to the supply; fees were paid
	// from existing coins, so supply = start + blocks*reward.
	want := start + 5*h.params.CoinbaseReward
	if got := h.chain.UTXO().TotalValue(); got != want {
		t.Fatalf("total value = %d, want %d", got, want)
	}
}

func TestMempoolRejectsDoubleSpend(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	tx1, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx1)

	// A conflicting payment spending the same coins.
	tx2, err := h.alice.BuildPayment(h.chain.UTXO(), h.alice.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	err = h.mempool.Accept(tx2, h.chain.UTXO(), h.chain.Height(), h.params)
	if !errors.Is(err, chain.ErrMempoolConflict) {
		t.Fatalf("err = %v, want ErrMempoolConflict", err)
	}
}

func TestMempoolRejectsDuplicate(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx)
	if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); !errors.Is(err, chain.ErrAlreadyPooled) {
		t.Fatalf("err = %v, want ErrAlreadyPooled", err)
	}
}

func TestMempoolForceReplaceEvictsConflicts(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	tx1, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx1)
	tx2, err := h.alice.BuildPayment(h.chain.UTXO(), h.alice.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.mempool.ForceReplace(tx2)
	if h.mempool.Contains(tx1.ID()) {
		t.Fatal("conflicting tx not evicted")
	}
	if !h.mempool.Contains(tx2.ID()) {
		t.Fatal("replacement not admitted")
	}
}

func TestInvalidSignatureRejected(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the signature.
	tx.Inputs[0].Unlock = script.UnlockP2PKH([]byte("bogus"), h.alice.PublicBytes())
	if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); err == nil {
		t.Fatal("bad signature accepted")
	}
}

func TestVerifyScriptsOffAcceptsBadSignature(t *testing.T) {
	// The Fig. 5 configuration: block verification disabled.
	params := chain.DefaultParams()
	params.VerifyScripts = false
	h := newHarness(t, params)

	tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	tx.Inputs[0].Unlock = script.UnlockP2PKH([]byte("bogus"), h.alice.PublicBytes())
	if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
		t.Fatalf("verification-off rejected tx: %v", err)
	}
}

func TestCoinbaseMaturity(t *testing.T) {
	params := chain.DefaultParams()
	params.CoinbaseMaturity = 3
	h := newHarness(t, params)

	b := h.mine()
	coinbase := b.Txs[0]

	// The miner tries to spend its reward immediately.
	minerW := h.minerW
	spend := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: coinbase.ID(), Index: 0}}},
		Outputs: []chain.TxOut{{Value: 1, Lock: script.PayToPubKeyHash(h.bob.PubKeyHash())}},
	}
	if err := minerW.SignP2PKHInputs(spend, h.chain.UTXO()); err != nil {
		t.Fatal(err)
	}
	err := h.mempool.Accept(spend, h.chain.UTXO(), h.chain.Height(), h.params)
	if !errors.Is(err, chain.ErrImmatureSpend) {
		t.Fatalf("err = %v, want ErrImmatureSpend", err)
	}

	// After maturity blocks it is spendable.
	h.mine()
	h.mine()
	if err := h.mempool.Accept(spend, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
		t.Fatalf("mature coinbase rejected: %v", err)
	}
}

func TestUnknownMinerRejected(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	rogueW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rogue := chain.NewMiner(rogueW.Key(), h.chain, h.mempool, rand.Reader)
	b, err := rogue.BuildBlock(h.now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.chain.AddBlock(b); !errors.Is(err, chain.ErrUnknownMiner) {
		t.Fatalf("err = %v, want ErrUnknownMiner", err)
	}
}

func TestTamperedBlockRejected(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	b, err := h.miner.BuildBlock(h.now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	b.Header.Time++ // invalidates the miner signature
	if err := h.chain.AddBlock(b); !errors.Is(err, chain.ErrBadMinerSig) {
		t.Fatalf("err = %v, want ErrBadMinerSig", err)
	}
}

func TestDuplicateBlockRejected(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	b := h.mine()
	if err := h.chain.AddBlock(b); !errors.Is(err, chain.ErrDuplicateBlock) {
		t.Fatalf("err = %v, want ErrDuplicateBlock", err)
	}
}

func TestUnknownParentRejected(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	b, err := h.miner.BuildBlock(h.now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	b.Header.PrevBlock = chain.Hash{0xff}
	b.Header.Height = 5
	if err := h.chain.AddBlock(b); !errors.Is(err, chain.ErrBadPrevBlock) {
		t.Fatalf("err = %v, want ErrBadPrevBlock", err)
	}
}

func TestBlockSerializeRoundTrip(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx)
	b := h.mine()

	back, err := chain.DeserializeBlock(b.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != b.ID() {
		t.Fatal("block ID changed in round trip")
	}
	if len(back.Txs) != len(b.Txs) {
		t.Fatalf("tx count = %d, want %d", len(back.Txs), len(b.Txs))
	}
	if !back.Header.VerifySignature() {
		t.Fatal("deserialized header signature invalid")
	}
	if !bytes.Equal(back.Serialize(), b.Serialize()) {
		t.Fatal("serialization not stable")
	}
}

func TestSubscribersNotified(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	var got []int64
	h.chain.Subscribe(func(b *chain.Block) { got = append(got, b.Header.Height) })
	h.mine()
	h.mine()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("notified heights = %v, want [1 2]", got)
	}
}

func TestReorgToLongerBranch(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	// Second authorized miner on a fork.
	forkW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	h.chain.AuthorizeMiner(forkW.PublicBytes())
	forkMiner := chain.NewMiner(forkW.Key(), h.chain, chain.NewMempool(), rand.Reader)

	// Main branch: height 1.
	main1 := h.mine()

	// Fork branch from genesis: heights 1' and 2'.
	fork1, err := buildOn(forkMiner, h.chain.Genesis(), h.now.Add(time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.chain.AddBlock(fork1); err != nil {
		t.Fatal(err)
	}
	// Tip unchanged: same length as main branch.
	if h.chain.Tip().ID() != main1.ID() {
		t.Fatal("equal-length fork displaced the tip")
	}

	fork2, err := buildOn(forkMiner, fork1, h.now.Add(2*time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	var notified []chain.Hash
	h.chain.Subscribe(func(b *chain.Block) { notified = append(notified, b.ID()) })
	if err := h.chain.AddBlock(fork2); err != nil {
		t.Fatal(err)
	}
	if h.chain.Tip().ID() != fork2.ID() {
		t.Fatal("longer fork did not become the tip")
	}
	if h.chain.Height() != 2 {
		t.Fatalf("height = %d, want 2", h.chain.Height())
	}
	// Both fork blocks are new to the best branch.
	if len(notified) != 2 || notified[0] != fork1.ID() || notified[1] != fork2.ID() {
		t.Fatalf("reorg notifications = %v", notified)
	}
	// UTXO reflects the fork branch: fork miner has two rewards.
	if got := forkW.Balance(h.chain.UTXO()); got != 2*h.params.CoinbaseReward {
		t.Fatalf("fork miner balance = %d, want %d", got, 2*h.params.CoinbaseReward)
	}
}

// buildOn hand-builds an empty signed block on a specific parent.
func buildOn(m *chain.Miner, parent *chain.Block, at time.Time, w *wallet.Wallet) (*chain.Block, error) {
	coinbase := &chain.Tx{
		Inputs: []chain.TxIn{{
			Prev:   chain.OutPoint{Index: 0xffffffff},
			Unlock: script.NewBuilder().AddInt64(parent.Header.Height + 1).AddData([]byte("fork")).Script(),
		}},
		Outputs: []chain.TxOut{{
			Value: chain.DefaultParams().CoinbaseReward,
			Lock:  script.PayToPubKeyHash(w.PubKeyHash()),
		}},
	}
	b := &chain.Block{
		Header: chain.Header{
			Version:    1,
			PrevBlock:  parent.ID(),
			MerkleRoot: chain.MerkleRoot([]*chain.Tx{coinbase}),
			Time:       at.UnixNano(),
			Height:     parent.Header.Height + 1,
		},
		Txs: []*chain.Tx{coinbase},
	}
	if err := b.Header.Sign(w.Key(), rand.Reader); err != nil {
		return nil, err
	}
	return b, nil
}

func TestOpReturnOutputsNotSpendable(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	tx, err := h.alice.BuildDataPublish(h.chain.UTXO(), []byte("ip=192.0.2.9:7000"), 5)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx)
	h.mine()

	utxo := h.chain.UTXO()
	if _, ok := utxo.Get(chain.OutPoint{TxID: tx.ID(), Index: 0}); ok {
		t.Fatal("OP_RETURN output entered the UTXO set")
	}
	// Change output (index 1) exists.
	if _, ok := utxo.Get(chain.OutPoint{TxID: tx.ID(), Index: 1}); !ok {
		t.Fatal("change output missing from UTXO set")
	}
}

func TestMerkleRootProperties(t *testing.T) {
	txs := []*chain.Tx{sampleCoinbase(1), sampleCoinbase(2), sampleCoinbase(3)}
	root3 := chain.MerkleRoot(txs)
	if root3 == (chain.Hash{}) {
		t.Fatal("zero merkle root")
	}
	// Changing any tx changes the root.
	txs[1] = sampleCoinbase(99)
	if chain.MerkleRoot(txs) == root3 {
		t.Fatal("merkle root insensitive to tx change")
	}
	// Single tx root is its ID.
	one := []*chain.Tx{sampleCoinbase(7)}
	if got := chain.MerkleRoot(one); got == (chain.Hash{}) {
		t.Fatal("zero root for single tx")
	}
	if chain.MerkleRoot(nil) != (chain.Hash{}) {
		t.Fatal("nonzero root for no txs")
	}
}

func sampleCoinbase(height int64) *chain.Tx {
	return &chain.Tx{
		Inputs: []chain.TxIn{{
			Prev:   chain.OutPoint{Index: 0xffffffff},
			Unlock: script.NewBuilder().AddInt64(height).Script(),
		}},
		Outputs: []chain.TxOut{{Value: 50, Lock: script.PayToPubKeyHash([20]byte{byte(height)})}},
	}
}
