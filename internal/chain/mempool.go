package chain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bcwan/internal/telemetry"
)

// Mempool holds transactions waiting to be mined. It enforces first-seen
// double-spend protection: a transaction conflicting with an accepted one
// is rejected (the attack window the paper discusses in §6 exists because
// a gateway releases the key before the payment is confirmed — a
// double-spender races the *miner*, not the mempool).
type Mempool struct {
	mu sync.Mutex
	// txs maps txid to transaction in arrival order (order kept
	// separately for deterministic block building).
	txs map[Hash]*Tx
	// order is the arrival sequence with tombstones: a removed entry is
	// zeroed in place (the zero Hash is unreachable for a real txid) and
	// compacted once tombstones outnumber live entries, so confirming a
	// large block never slice-shifts the whole tail per transaction.
	order    []Hash
	orderIdx map[Hash]int // txid → index into order
	tomb     int          // tombstone count in order
	// spends maps each spent outpoint to the claiming txid.
	spends map[OutPoint]Hash
	// short indexes pooled txids by their compact-relay short id so
	// block reconstruction resolves sketches without scanning the pool.
	short map[uint64][]Hash
	// overlay is the persistent copy-on-write view of base+pool that
	// Accept validates against, updated incrementally per admission and
	// rebuilt lazily when the base or height moves or the pool shrinks.
	// Rebuilding per Accept made admission O(pool²) overall.
	overlay       *UTXOView
	overlayBase   UTXOReader
	overlayHeight int64
	// verifier, when set via UseVerifier, runs Accept's script checks
	// and records them in the shared signature cache so block connect
	// skips re-verifying admitted transactions. Nil falls back to
	// sequential uncached verification.
	verifier *Verifier
	// metrics is nil until Instrument is called.
	metrics *mempoolMetrics
}

// Mempool errors.
var (
	// ErrMempoolConflict reports a double spend against a pooled
	// transaction.
	ErrMempoolConflict = errors.New("chain: conflicts with mempool transaction")
	// ErrAlreadyPooled reports a duplicate submission.
	ErrAlreadyPooled = errors.New("chain: transaction already in mempool")
)

// NewMempool returns an empty pool.
func NewMempool() *Mempool {
	return &Mempool{
		txs:      make(map[Hash]*Tx),
		orderIdx: make(map[Hash]int),
		spends:   make(map[OutPoint]Hash),
		short:    make(map[uint64][]Hash),
	}
}

// UseVerifier shares a script verifier (typically Chain.Verifier()) with
// the pool, so admission verifications populate the same signature cache
// block connect consults.
func (m *Mempool) UseVerifier(v *Verifier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifier = v
}

// Instrument registers the pool's metrics in reg (admissions, rejects
// by reason, size gauge, admission latency). Call once, before the pool
// sees concurrent use; a nil registry is a no-op.
func (m *Mempool) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metrics = newMempoolMetrics(reg)
	m.metrics.size.Set(int64(len(m.txs)))
}

// Accept validates tx against the provided UTXO view (spendability and
// scripts) and against pooled spends, then admits it. Outputs created by
// pooled transactions are spendable — the gateway's claim chains onto the
// recipient's still-unconfirmed payment (Fig. 3 steps 9–10, the paper's
// deliberate zero-confirmation choice discussed in §6).
//
// utxo is only read, never mutated: pooled transactions are layered on
// top through a copy-on-write overlay, so callers can pass the chain's
// live set from inside Chain.ReadState without cloning it.
func (m *Mempool) Accept(tx *Tx, utxo UTXOReader, height int64, params Params) error {
	id := tx.ID()

	m.mu.Lock()
	defer m.mu.Unlock()
	var start time.Time
	if m.metrics != nil {
		start = time.Now()
	}
	err := m.acceptLocked(tx, id, utxo, height, params)
	if mm := m.metrics; mm != nil {
		mm.acceptSeconds.ObserveSince(start)
		if err == nil {
			mm.admitted.Inc()
			mm.size.Set(int64(len(m.txs)))
		} else {
			mm.rejectCounter(err).Inc()
		}
	}
	return err
}

func (m *Mempool) acceptLocked(tx *Tx, id Hash, utxo UTXOReader, height int64, params Params) error {
	if tx.IsCoinbase() {
		return ErrBadCoinbase
	}
	if _, dup := m.txs[id]; dup {
		return ErrAlreadyPooled
	}
	for _, in := range tx.Inputs {
		if prior, spent := m.spends[in.Prev]; spent {
			return fmt.Errorf("%w: %s already spent by %s", ErrMempoolConflict, in.Prev, prior)
		}
	}
	// Validate against the persistent confirmed+pooled overlay, so
	// chained unconfirmed spends connect. The overlay is extended by
	// exactly this transaction on success — the previous code rebuilt
	// it from the whole pool on every call, which made a burst of n
	// admissions O(n²).
	view := m.overlayLocked(utxo, height)
	if _, err := ConnectTxVerified(view, tx, height+1, params.CoinbaseMaturity, params.VerifyScripts, m.verifier); err != nil {
		return err
	}
	if err := view.ApplyTx(tx, height+1); err != nil {
		// ApplyTx mutates the overlay before it can fail (inputs are
		// spent before the duplicate-output check), so a partial
		// application poisons it for the next admission.
		m.overlay = nil
		return err
	}
	m.addLocked(id, tx)
	return nil
}

// overlayLocked returns the persistent confirmed+pooled view, rebuilding
// it when the base state or tip height moved or a removal invalidated
// it; the caller holds m.mu.
func (m *Mempool) overlayLocked(utxo UTXOReader, height int64) *UTXOView {
	if m.overlay != nil && m.overlayBase == utxo && m.overlayHeight == height {
		return m.overlay
	}
	view := NewUTXOView(utxo)
	for _, poolID := range m.order {
		if pooled, ok := m.txs[poolID]; ok {
			// Pooled txs were validated on entry; application can
			// only fail if the chain moved under us, in which case
			// the stale tx is simply not part of the view.
			_ = view.ApplyTx(pooled, height+1)
		}
	}
	m.overlay, m.overlayBase, m.overlayHeight = view, utxo, height
	return view
}

// addLocked records an admitted transaction in every index; the caller
// holds m.mu and has already validated the transaction.
func (m *Mempool) addLocked(id Hash, tx *Tx) {
	m.txs[id] = tx
	m.orderIdx[id] = len(m.order)
	m.order = append(m.order, id)
	for _, in := range tx.Inputs {
		m.spends[in.Prev] = id
	}
	sid := ShortTxID(id)
	m.short[sid] = append(m.short[sid], id)
}

// ForceReplace admits tx, evicting any pooled transactions that conflict
// with it. This models a malicious actor with miner access replacing a
// payment with a double spend (the §6 attack simulation); honest nodes
// never call it.
func (m *Mempool) ForceReplace(tx *Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, in := range tx.Inputs {
		if prior, ok := m.spends[in.Prev]; ok {
			m.removeLocked(prior)
		}
	}
	id := tx.ID()
	if _, dup := m.txs[id]; dup {
		return
	}
	m.addLocked(id, tx)
	// The replacement skipped validation, so the incremental overlay no
	// longer mirrors the pool.
	m.overlay = nil
	m.compactOrderLocked()
	if m.metrics != nil {
		m.metrics.size.Set(int64(len(m.txs)))
	}
}

// ExtendView applies every pooled transaction, in arrival order, to the
// given UTXO set — producing the "effective" spendable view a wallet
// sees, including unconfirmed change. Stale pooled transactions that no
// longer connect are skipped.
func (m *Mempool) ExtendView(view *UTXOSet, height int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range m.order {
		if tx, ok := m.txs[id]; ok {
			_ = view.ApplyTx(tx, height+1)
		}
	}
}

// Get returns a pooled transaction.
func (m *Mempool) Get(id Hash) (*Tx, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.txs[id]
	return tx, ok
}

// GetByShort returns every pooled transaction whose txid abbreviates to
// the given compact-relay short id — normally zero or one; more than
// one is a collision the reconstruction treats as missing.
func (m *Mempool) GetByShort(sid uint64) []*Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.short[sid]
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Tx, 0, len(ids))
	for _, id := range ids {
		if tx, ok := m.txs[id]; ok {
			out = append(out, tx)
		}
	}
	return out
}

// Contains reports whether the transaction is pooled.
func (m *Mempool) Contains(id Hash) bool {
	_, ok := m.Get(id)
	return ok
}

// Len reports the pool size.
func (m *Mempool) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.txs)
}

// Select returns up to max transactions in arrival order for block
// building.
func (m *Mempool) Select(max int) []*Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Tx, 0, min(max, len(m.order)))
	for _, id := range m.order {
		if len(out) >= max {
			break
		}
		if tx, ok := m.txs[id]; ok {
			out = append(out, tx)
		}
	}
	return out
}

// RemoveConfirmed drops every pooled transaction included in the block,
// plus any transaction that conflicts with the block's spends.
func (m *Mempool) RemoveConfirmed(b *Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tx := range b.Txs {
		m.removeLocked(tx.ID())
		for _, in := range tx.Inputs {
			if prior, ok := m.spends[in.Prev]; ok {
				m.removeLocked(prior)
			}
		}
	}
	m.compactOrderLocked()
	if m.metrics != nil {
		m.metrics.size.Set(int64(len(m.txs)))
	}
}

func (m *Mempool) removeLocked(id Hash) {
	tx, ok := m.txs[id]
	if !ok {
		return
	}
	delete(m.txs, id)
	for _, in := range tx.Inputs {
		if m.spends[in.Prev] == id {
			delete(m.spends, in.Prev)
		}
	}
	if i, ok := m.orderIdx[id]; ok {
		m.order[i] = Hash{}
		delete(m.orderIdx, id)
		m.tomb++
	}
	sid := ShortTxID(id)
	ids := m.short[sid]
	for i, h := range ids {
		if h == id {
			m.short[sid] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(m.short[sid]) == 0 {
		delete(m.short, sid)
	}
	// The removed transaction's effects are baked into the incremental
	// overlay; drop it so the next Accept rebuilds from the live pool.
	m.overlay = nil
}

// compactOrderLocked rewrites order without tombstones once they reach
// half the slice, keeping removal amortized O(1); the caller holds m.mu.
func (m *Mempool) compactOrderLocked() {
	if m.tomb*2 < len(m.order) {
		return
	}
	live := m.order[:0]
	for _, id := range m.order {
		if id != (Hash{}) {
			m.orderIdx[id] = len(live)
			live = append(live, id)
		}
	}
	m.order = live
	m.tomb = 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
