package chain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bcwan/internal/telemetry"
)

// Mempool holds transactions waiting to be mined. It enforces first-seen
// double-spend protection: a transaction conflicting with an accepted one
// is rejected (the attack window the paper discusses in §6 exists because
// a gateway releases the key before the payment is confirmed — a
// double-spender races the *miner*, not the mempool).
type Mempool struct {
	mu sync.Mutex
	// txs maps txid to transaction in arrival order (order kept
	// separately for deterministic block building).
	txs   map[Hash]*Tx
	order []Hash
	// spends maps each spent outpoint to the claiming txid.
	spends map[OutPoint]Hash
	// verifier, when set via UseVerifier, runs Accept's script checks
	// and records them in the shared signature cache so block connect
	// skips re-verifying admitted transactions. Nil falls back to
	// sequential uncached verification.
	verifier *Verifier
	// metrics is nil until Instrument is called.
	metrics *mempoolMetrics
}

// Mempool errors.
var (
	// ErrMempoolConflict reports a double spend against a pooled
	// transaction.
	ErrMempoolConflict = errors.New("chain: conflicts with mempool transaction")
	// ErrAlreadyPooled reports a duplicate submission.
	ErrAlreadyPooled = errors.New("chain: transaction already in mempool")
)

// NewMempool returns an empty pool.
func NewMempool() *Mempool {
	return &Mempool{
		txs:    make(map[Hash]*Tx),
		spends: make(map[OutPoint]Hash),
	}
}

// UseVerifier shares a script verifier (typically Chain.Verifier()) with
// the pool, so admission verifications populate the same signature cache
// block connect consults.
func (m *Mempool) UseVerifier(v *Verifier) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifier = v
}

// Instrument registers the pool's metrics in reg (admissions, rejects
// by reason, size gauge, admission latency). Call once, before the pool
// sees concurrent use; a nil registry is a no-op.
func (m *Mempool) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metrics = newMempoolMetrics(reg)
	m.metrics.size.Set(int64(len(m.txs)))
}

// Accept validates tx against the provided UTXO view (spendability and
// scripts) and against pooled spends, then admits it. Outputs created by
// pooled transactions are spendable — the gateway's claim chains onto the
// recipient's still-unconfirmed payment (Fig. 3 steps 9–10, the paper's
// deliberate zero-confirmation choice discussed in §6).
//
// utxo is only read, never mutated: pooled transactions are layered on
// top through a copy-on-write overlay, so callers can pass the chain's
// live set from inside Chain.ReadState without cloning it.
func (m *Mempool) Accept(tx *Tx, utxo UTXOReader, height int64, params Params) error {
	id := tx.ID()

	m.mu.Lock()
	defer m.mu.Unlock()
	var start time.Time
	if m.metrics != nil {
		start = time.Now()
	}
	err := m.acceptLocked(tx, id, utxo, height, params)
	if mm := m.metrics; mm != nil {
		mm.acceptSeconds.ObserveSince(start)
		if err == nil {
			mm.admitted.Inc()
			mm.size.Set(int64(len(m.txs)))
		} else {
			mm.rejectCounter(err).Inc()
		}
	}
	return err
}

func (m *Mempool) acceptLocked(tx *Tx, id Hash, utxo UTXOReader, height int64, params Params) error {
	if tx.IsCoinbase() {
		return ErrBadCoinbase
	}
	if _, dup := m.txs[id]; dup {
		return ErrAlreadyPooled
	}
	for _, in := range tx.Inputs {
		if prior, spent := m.spends[in.Prev]; spent {
			return fmt.Errorf("%w: %s already spent by %s", ErrMempoolConflict, in.Prev, prior)
		}
	}
	// Extend the confirmed view with pooled transactions, in arrival
	// order, so chained unconfirmed spends validate. The overlay costs
	// O(pooled txs), not O(UTXO set) — the old Clone here dominated
	// admission latency on large sets.
	view := NewUTXOView(utxo)
	for _, poolID := range m.order {
		if pooled, ok := m.txs[poolID]; ok {
			// Pooled txs were validated on entry; application can
			// only fail if the chain moved under us, in which case
			// the stale tx is simply not part of the view.
			_ = view.ApplyTx(pooled, height+1)
		}
	}
	if _, err := ConnectTxVerified(view, tx, height+1, params.CoinbaseMaturity, params.VerifyScripts, m.verifier); err != nil {
		return err
	}
	m.txs[id] = tx
	m.order = append(m.order, id)
	for _, in := range tx.Inputs {
		m.spends[in.Prev] = id
	}
	return nil
}

// ForceReplace admits tx, evicting any pooled transactions that conflict
// with it. This models a malicious actor with miner access replacing a
// payment with a double spend (the §6 attack simulation); honest nodes
// never call it.
func (m *Mempool) ForceReplace(tx *Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, in := range tx.Inputs {
		if prior, ok := m.spends[in.Prev]; ok {
			m.removeLocked(prior)
		}
	}
	id := tx.ID()
	if _, dup := m.txs[id]; dup {
		return
	}
	m.txs[id] = tx
	m.order = append(m.order, id)
	for _, in := range tx.Inputs {
		m.spends[in.Prev] = id
	}
	if m.metrics != nil {
		m.metrics.size.Set(int64(len(m.txs)))
	}
}

// ExtendView applies every pooled transaction, in arrival order, to the
// given UTXO set — producing the "effective" spendable view a wallet
// sees, including unconfirmed change. Stale pooled transactions that no
// longer connect are skipped.
func (m *Mempool) ExtendView(view *UTXOSet, height int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range m.order {
		if tx, ok := m.txs[id]; ok {
			_ = view.ApplyTx(tx, height+1)
		}
	}
}

// Get returns a pooled transaction.
func (m *Mempool) Get(id Hash) (*Tx, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx, ok := m.txs[id]
	return tx, ok
}

// Contains reports whether the transaction is pooled.
func (m *Mempool) Contains(id Hash) bool {
	_, ok := m.Get(id)
	return ok
}

// Len reports the pool size.
func (m *Mempool) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.txs)
}

// Select returns up to max transactions in arrival order for block
// building.
func (m *Mempool) Select(max int) []*Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Tx, 0, min(max, len(m.order)))
	for _, id := range m.order {
		if len(out) >= max {
			break
		}
		if tx, ok := m.txs[id]; ok {
			out = append(out, tx)
		}
	}
	return out
}

// RemoveConfirmed drops every pooled transaction included in the block,
// plus any transaction that conflicts with the block's spends.
func (m *Mempool) RemoveConfirmed(b *Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tx := range b.Txs {
		m.removeLocked(tx.ID())
		for _, in := range tx.Inputs {
			if prior, ok := m.spends[in.Prev]; ok {
				m.removeLocked(prior)
			}
		}
	}
	if m.metrics != nil {
		m.metrics.size.Set(int64(len(m.txs)))
	}
}

func (m *Mempool) removeLocked(id Hash) {
	tx, ok := m.txs[id]
	if !ok {
		return
	}
	delete(m.txs, id)
	for _, in := range tx.Inputs {
		if m.spends[in.Prev] == id {
			delete(m.spends, in.Prev)
		}
	}
	for i, h := range m.order {
		if h == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
