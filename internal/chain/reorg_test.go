package chain_test

import (
	"crypto/rand"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// TestReorgInvalidatesFairExchangeClaim exercises the §6 risk at the
// consensus layer: a payment and its claim confirm on one branch, then a
// longer branch without them wins — the claim's coins vanish with the
// reorg, exactly the loss a zero-confirmation gateway accepts.
func TestReorgInvalidatesFairExchangeClaim(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	// A second authorized miner builds the attacker's branch.
	forkW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	h.chain.AuthorizeMiner(forkW.PublicBytes())

	// The honest flow: payment + claim confirmed at height 1.
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: h.alice.PubKeyHash(),
		RefundHeight:      200,
		BuyerPubKeyHash:   h.bob.PubKeyHash(),
	}
	payment, err := h.bob.BuildKeyReleasePayment(h.chain.UTXO(), params, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(payment)
	claim, err := h.alice.BuildClaim(chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], eKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(claim)
	h.mine()

	if got := h.alice.Balance(h.chain.UTXO()); got != initialFunds+495 {
		t.Fatalf("gateway balance after claim = %d", got)
	}

	// The attacker mines two empty blocks from genesis: the longer
	// branch wins and the payment/claim are orphaned.
	fork1, err := buildOn(nil, h.chain.Genesis(), h.now.Add(time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.chain.AddBlock(fork1); err != nil {
		t.Fatal(err)
	}
	fork2, err := buildOn(nil, fork1, h.now.Add(2*time.Hour), forkW)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.chain.AddBlock(fork2); err != nil {
		t.Fatal(err)
	}

	if h.chain.Tip().ID() != fork2.ID() {
		t.Fatal("reorg did not happen")
	}
	// The gateway's revenue is gone; the revealed key, however, is
	// still public knowledge — the paper's double-spend loss.
	if got := h.alice.Balance(h.chain.UTXO()); got != initialFunds {
		t.Fatalf("gateway balance after reorg = %d, want %d", got, initialFunds)
	}
	if _, _, found := h.chain.FindTx(claim.ID()); found {
		t.Fatal("claim still on the best branch after reorg")
	}
	// The payment's output no longer exists on the best branch.
	if _, ok := h.chain.UTXO().Get(chain.OutPoint{TxID: payment.ID(), Index: 0}); ok {
		t.Fatal("orphaned payment output present in UTXO")
	}
}

// TestMinerSkipsStaleTransactions: a pooled transaction invalidated by a
// conflicting confirmed block must not appear in newly built blocks.
func TestMinerSkipsStaleTransactions(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	// Two wallets race for the same coins via separate mempools.
	tx1, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := h.alice.BuildPayment(h.chain.UTXO(), h.alice.PubKeyHash(), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	// tx2 confirms via a direct block; tx1 sits in the pool.
	h.accept(tx1)
	h.mempool.ForceReplace(tx2)
	b := h.mine()
	for _, tx := range b.Txs {
		if tx.ID() == tx1.ID() {
			t.Fatal("evicted conflict was mined")
		}
	}
	// The pool no longer offers tx1 (evicted by ForceReplace), and a
	// new block contains only a coinbase.
	b2 := h.mine()
	if len(b2.Txs) != 1 {
		t.Fatalf("block txs = %d, want coinbase only", len(b2.Txs))
	}
}
