package chain_test

import (
	mrand "math/rand"
	"testing"
	"testing/quick"

	"bcwan/internal/chain"
	"bcwan/internal/script"
)

// Property: across any sequence of random valid payments interleaved with
// mined blocks, the total UTXO value equals the genesis allocation plus
// one coinbase reward per block. Fees are redistributed to the miner, so
// nothing is ever created or destroyed beyond the subsidy.
func TestValueConservationProperty(t *testing.T) {
	f := func(amounts []uint16, mineEvery uint8) bool {
		if len(amounts) > 25 {
			amounts = amounts[:25]
		}
		step := int(mineEvery%4) + 1
		h := newHarness(t, chain.DefaultParams())
		genesisTotal := h.chain.UTXO().TotalValue()

		blocks := int64(0)
		for i, a := range amounts {
			amount := uint64(a)%500 + 1
			fee := uint64(a) % 7
			tx, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), amount, fee)
			if err != nil {
				// Alice ran out of confirmed funds; mine and move on.
				h.mine()
				blocks++
				continue
			}
			if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
				continue
			}
			if i%step == 0 {
				h.mine()
				blocks++
			}
		}
		h.mine()
		blocks++

		want := genesisTotal + uint64(blocks)*h.params.CoinbaseReward
		return h.chain.UTXO().TotalValue() == want
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: chained unconfirmed transactions accepted by the mempool
// always survive mining — a block built from the pool is always valid.
func TestMempoolChainsMineCleanly(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())

	// Build a chain of 6 spends, each consuming the previous change,
	// all unconfirmed.
	for i := 0; i < 6; i++ {
		utxo := h.chain.UTXO()
		h.mempool.ExtendView(utxo, h.chain.Height())
		tx, err := h.alice.BuildPayment(utxo, h.bob.PubKeyHash(), 10, 1)
		if err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
		if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	if h.mempool.Len() != 6 {
		t.Fatalf("pool = %d, want 6", h.mempool.Len())
	}
	b := h.mine()
	if len(b.Txs) != 7 { // coinbase + 6
		t.Fatalf("block txs = %d, want 7", len(b.Txs))
	}
	if h.mempool.Len() != 0 {
		t.Fatalf("pool not drained: %d", h.mempool.Len())
	}
	if got := h.bob.Balance(h.chain.UTXO()); got != initialFunds+60 {
		t.Fatalf("bob balance = %d", got)
	}
}

// Property: a random OP_RETURN payload survives the full
// publish→mine→scan pipeline byte-for-byte.
func TestOpReturnPayloadFidelityQuick(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	f := func(payload []byte) bool {
		if len(payload) == 0 || len(payload) > 256 {
			return true // vacuous
		}
		tx, err := h.alice.BuildDataPublish(h.chain.UTXO(), payload, 1)
		if err != nil {
			return false
		}
		if err := h.mempool.Accept(tx, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
			return false
		}
		b := h.mine()
		for _, btx := range b.Txs {
			if btx.ID() != tx.ID() {
				continue
			}
			got, err := script.ExtractNullData(btx.Outputs[0].Lock)
			if err != nil {
				return false
			}
			if len(got) != len(payload) {
				return false
			}
			for i := range got {
				if got[i] != payload[i] {
					return false
				}
			}
			return true
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: block deserialization of random bytes never panics and never
// yields a block that revalidates.
func TestDeserializeBlockFuzzSafety(t *testing.T) {
	f := func(data []byte) bool {
		b, err := chain.DeserializeBlock(data)
		if err != nil {
			return true
		}
		// Parsed garbage must not carry a valid miner signature.
		return !b.Header.VerifySignature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: mrand.New(mrand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
