// Package chain implements the BcWAN blockchain substrate: UTXO-model
// transactions, script-locked outputs, blocks, a mempool, validation, and
// a permissioned miner. It mirrors the Multichain features the paper's
// proof of concept relies on (§5.1): a configurable average mining time
// and block size, OP_RETURN data publishing, and a custom script operator
// (OP_CHECKRSA512PAIR) patched into validation.
package chain

import (
	"runtime"
	"time"
)

// Params are the chain's consensus and performance tunables — the knobs
// Multichain exposes that "impact the theoretical maximum number of
// transactions per second" (§5.1).
type Params struct {
	// BlockInterval is the target average mining time.
	BlockInterval time.Duration
	// MaxBlockTxs caps transactions per block (block size analogue).
	MaxBlockTxs int
	// CoinbaseReward is the subsidy paid to the miner per block.
	CoinbaseReward uint64
	// CoinbaseMaturity is the number of blocks before a coinbase output
	// may be spent.
	CoinbaseMaturity int64
	// VerifyScripts toggles full script validation when connecting
	// blocks. The paper's Fig. 5 measurement disables Multichain's block
	// verification; this switch reproduces that configuration (together
	// with VerificationStall in the simulation layer).
	VerifyScripts bool
	// VerifyWorkers sets the script-verification fan-out when connecting
	// blocks: 0 verifies sequentially on the caller's goroutine (the
	// seed's deterministic behavior, used for the Fig. 5 ablation), n > 0
	// fans independent input verifications out to n workers with
	// first-error cancellation. Parallel and sequential validation accept
	// and reject exactly the same blocks.
	VerifyWorkers int
}

// DefaultParams mirrors the proof-of-concept configuration: a Multichain
// with a short block interval, sized for the 5-node PlanetLab deployment.
// Script verification fans out across all cores by default.
func DefaultParams() Params {
	return Params{
		BlockInterval:    15 * time.Second,
		MaxBlockTxs:      1000,
		CoinbaseReward:   50_000,
		CoinbaseMaturity: 1,
		VerifyScripts:    true,
		VerifyWorkers:    runtime.GOMAXPROCS(0),
	}
}
