package chain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bcwan/internal/script"
)

// Chain is the block tree with UTXO state for the best branch. It accepts
// blocks from authorized miners, supports side branches, and reorganizes
// to the longest valid branch.
type Chain struct {
	mu     sync.RWMutex
	params Params

	genesis *Block
	// index holds every known block by ID.
	index map[Hash]*Block
	// best is the active branch, genesis first.
	best []*Block
	// utxo is the UTXO set of the best branch tip.
	utxo *UTXOSet
	// miners is the set of authorized miner public keys (hex of the
	// serialized point). Empty means any signed block is accepted.
	miners map[string]bool
	// verifier runs script verification for block connect and reorg
	// replay; shared (via Verifier()) with the mempool and miner so a
	// script pair checked at mempool admission is a cache hit at block
	// connect.
	verifier *Verifier

	// subscribers receive every block that becomes part of the best
	// branch (including reorged-in blocks).
	subscribers []func(*Block)

	// metrics is nil until Instrument is called; every use is guarded
	// so an uninstrumented chain pays only the nil check.
	metrics *chainMetrics
}

// Chain errors.
var (
	// ErrDuplicateBlock reports a block already in the index.
	ErrDuplicateBlock = errors.New("chain: duplicate block")
	// ErrInvalidGenesis reports a genesis block that fails validation.
	ErrInvalidGenesis = errors.New("chain: invalid genesis block")
)

// New creates a chain from a genesis block. The genesis block is not
// signature-checked (it is configuration, like Multichain's params.dat).
func New(params Params, genesis *Block) (*Chain, error) {
	if genesis == nil || len(genesis.Txs) == 0 || genesis.Header.Height != 0 {
		return nil, ErrInvalidGenesis
	}
	if MerkleRoot(genesis.Txs) != genesis.Header.MerkleRoot {
		return nil, fmt.Errorf("%w: merkle root mismatch", ErrInvalidGenesis)
	}
	utxo := NewUTXOSet()
	for _, tx := range genesis.Txs {
		if err := utxo.ApplyTx(tx, 0); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidGenesis, err)
		}
	}
	c := &Chain{
		params:   params,
		genesis:  genesis,
		index:    map[Hash]*Block{genesis.ID(): genesis},
		best:     []*Block{genesis},
		utxo:     utxo,
		miners:   make(map[string]bool),
		verifier: NewVerifier(params.VerifyWorkers, NewSigCache(DefaultSigCacheSize)),
	}
	return c, nil
}

// AuthorizeMiner adds a public key to the permissioned miner set.
func (c *Chain) AuthorizeMiner(pubKey []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.miners[string(pubKey)] = true
}

// Params returns the chain parameters.
func (c *Chain) Params() Params { return c.params }

// Verifier returns the chain's script verifier (worker pool + signature
// cache). The mempool and miner share it so verification work done at
// admission is not repeated at block connect.
func (c *Chain) Verifier() *Verifier { return c.verifier }

// Genesis returns the genesis block.
func (c *Chain) Genesis() *Block { return c.genesis }

// Height returns the best-branch tip height.
func (c *Chain) Height() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int64(len(c.best)) - 1
}

// Tip returns the best-branch tip block.
func (c *Chain) Tip() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.best[len(c.best)-1]
}

// BlockAt returns the best-branch block at the given height.
func (c *Chain) BlockAt(height int64) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if height < 0 || height >= int64(len(c.best)) {
		return nil, false
	}
	return c.best[height], true
}

// BlockByID returns any indexed block (best branch or side branch).
func (c *Chain) BlockByID(id Hash) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.index[id]
	return b, ok
}

// UTXO returns a snapshot copy of the best-branch UTXO set.
func (c *Chain) UTXO() *UTXOSet {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.utxo.Clone()
}

// Subscribe registers a callback invoked (synchronously, in AddBlock's
// caller) for every block that joins the best branch. Used by the
// registry scanner and the recipient's claim watcher.
func (c *Chain) Subscribe(fn func(*Block)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subscribers = append(c.subscribers, fn)
}

// AddBlock validates and accepts a block, extending the best branch, or
// storing (and possibly reorganizing to) a side branch.
func (c *Chain) AddBlock(b *Block) error {
	c.mu.Lock()
	var notify []*Block
	err := c.addBlockLocked(b, &notify)
	subs := make([]func(*Block), len(c.subscribers))
	copy(subs, c.subscribers)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	for _, nb := range notify {
		for _, fn := range subs {
			fn(nb)
		}
	}
	return nil
}

func (c *Chain) addBlockLocked(b *Block, notify *[]*Block) error {
	var start time.Time
	if c.metrics != nil {
		start = time.Now()
	}
	id := b.ID()
	if _, dup := c.index[id]; dup {
		return ErrDuplicateBlock
	}
	parent, ok := c.index[b.Header.PrevBlock]
	if !ok {
		return fmt.Errorf("%w: %s", ErrBadPrevBlock, b.Header.PrevBlock)
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: block %d on parent %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	if len(c.miners) > 0 && !c.miners[string(b.Header.MinerPubKey)] {
		return ErrUnknownMiner
	}
	if !b.Header.VerifySignature() {
		return ErrBadMinerSig
	}

	// Build the candidate branch: genesis..parent + b.
	branch, err := c.branchTo(parent)
	if err != nil {
		return err
	}
	branch = append(branch, b)

	// Validate b against the UTXO view of its parent branch.
	utxo, err := c.utxoFor(branch[:len(branch)-1])
	if err != nil {
		return err
	}
	if err := connectBlock(utxo, b, c.params, c.verifier); err != nil {
		return err
	}

	c.index[id] = b

	// Adopt the branch if it is strictly longer than the current best.
	if len(branch) > len(c.best) {
		// Blocks new to the best branch get notified.
		fork := commonPrefixLen(c.best, branch)
		*notify = append(*notify, branch[fork:]...)
		if m := c.metrics; m != nil {
			if depth := len(c.best) - fork; depth > 0 {
				m.reorgs.Inc()
				m.reorgDepth.Set(int64(depth))
			}
		}
		c.best = branch
		c.utxo = utxo
	}
	if m := c.metrics; m != nil {
		m.connectSeconds.ObserveSince(start)
		m.blocksConnected.Inc()
		m.txsVerified.Add(uint64(len(b.Txs) - 1))
		var scripts uint64
		for _, tx := range b.Txs[1:] {
			scripts += uint64(len(tx.Inputs))
		}
		m.scriptsVerified.Add(scripts)
		m.utxoSize.Set(int64(c.utxo.Len()))
	}
	return nil
}

// branchTo walks parent links from b back to genesis.
func (c *Chain) branchTo(b *Block) ([]*Block, error) {
	branch := make([]*Block, b.Header.Height+1)
	cur := b
	for {
		if cur.Header.Height < 0 || int(cur.Header.Height) >= len(branch) {
			return nil, fmt.Errorf("%w: inconsistent height %d", ErrBadHeight, cur.Header.Height)
		}
		branch[cur.Header.Height] = cur
		if cur.Header.Height == 0 {
			break
		}
		parent, ok := c.index[cur.Header.PrevBlock]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrBadPrevBlock, cur.Header.PrevBlock)
		}
		cur = parent
	}
	if branch[0] != c.genesis {
		return nil, fmt.Errorf("%w: branch does not reach genesis", ErrBadPrevBlock)
	}
	return branch, nil
}

// utxoFor replays a branch from genesis into a fresh UTXO set. If the
// branch shares the current best branch as a prefix, the existing tip set
// is reused; otherwise the branch is replayed (O(n), acceptable at the
// scale of the PoC's deployments).
func (c *Chain) utxoFor(branch []*Block) (*UTXOSet, error) {
	if commonPrefixLen(c.best, branch) == len(branch) && len(branch) == len(c.best) {
		return c.utxo.Clone(), nil
	}
	utxo := NewUTXOSet()
	for i, blk := range branch {
		if i == 0 {
			for _, tx := range blk.Txs {
				if err := utxo.ApplyTx(tx, 0); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := connectBlock(utxo, blk, c.params, c.verifier); err != nil {
			return nil, fmt.Errorf("replay height %d: %w", i, err)
		}
	}
	return utxo, nil
}

func commonPrefixLen(a, b []*Block) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// FindTx scans the best branch for a transaction, returning it with the
// height of its block. Confirmations = tip height − height + 1.
func (c *Chain) FindTx(id Hash) (*Tx, int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for h := len(c.best) - 1; h >= 0; h-- {
		for _, tx := range c.best[h].Txs {
			if tx.ID() == id {
				return tx, int64(h), true
			}
		}
	}
	return nil, 0, false
}

// FindSpender scans the best branch for the transaction that spends the
// given outpoint. The recipient uses it to spot the gateway's claim and
// extract the revealed ephemeral key (Fig. 3 step 10).
func (c *Chain) FindSpender(op OutPoint) (*Tx, int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for h := len(c.best) - 1; h >= 0; h-- {
		for _, tx := range c.best[h].Txs {
			if tx.IsCoinbase() {
				continue
			}
			for _, in := range tx.Inputs {
				if in.Prev == op {
					return tx, int64(h), true
				}
			}
		}
	}
	return nil, 0, false
}

// Confirmations returns how many blocks confirm the transaction (1 =
// in the tip block), or 0 if unconfirmed.
func (c *Chain) Confirmations(id Hash) int64 {
	_, height, ok := c.FindTx(id)
	if !ok {
		return 0
	}
	return c.Height() - height + 1
}

// GenesisBlock builds a canonical genesis block paying initial funds to
// the given public key hashes. It is deterministic for reproducible
// simulations.
func GenesisBlock(allocations map[[20]byte]uint64) *Block {
	// Deterministic output order: sort by hash bytes.
	type alloc struct {
		hash  [20]byte
		value uint64
	}
	sorted := make([]alloc, 0, len(allocations))
	for h, v := range allocations {
		sorted = append(sorted, alloc{h, v})
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && lessHash(sorted[j].hash, sorted[j-1].hash); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	coinbase := &Tx{
		Inputs: []TxIn{{Prev: OutPoint{Index: coinbaseIndex}}},
	}
	for _, a := range sorted {
		coinbase.Outputs = append(coinbase.Outputs, TxOut{
			Value: a.value,
			Lock:  payToHash(a.hash),
		})
	}
	if len(coinbase.Outputs) == 0 {
		// A burn output so the genesis coinbase is well formed.
		coinbase.Outputs = append(coinbase.Outputs, TxOut{Value: 0, Lock: payToHash([20]byte{})})
	}
	b := &Block{
		Header: Header{Version: 1, Height: 0},
		Txs:    []*Tx{coinbase},
	}
	b.Header.MerkleRoot = MerkleRoot(b.Txs)
	return b
}

func lessHash(a, b [20]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func payToHash(h [20]byte) script.Script {
	return script.PayToPubKeyHash(h)
}
