package chain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bcwan/internal/script"
)

// Chain is the block tree with UTXO state for the best branch. It accepts
// blocks from authorized miners, supports side branches, and reorganizes
// to the longest valid branch.
type Chain struct {
	mu     sync.RWMutex
	params Params

	genesis *Block
	// index holds every known block by ID.
	index map[Hash]*Block
	// best is the active branch, genesis first.
	best []*Block
	// utxo is the UTXO set of the best branch tip, maintained
	// incrementally: blocks connect and disconnect in place, journaled
	// by undo.
	utxo *UTXOSet
	// undo maps each best-branch block to the journal that reverses it;
	// entries for disconnected blocks are dropped (and re-captured if
	// the block reconnects).
	undo map[Hash]*BlockUndo
	// txIndex locates every best-branch transaction by ID in O(1); it is
	// maintained on connect/disconnect and backs FindTx, Confirmations
	// and the RPC lookups.
	txIndex map[Hash]txLoc
	// spenders maps each outpoint spent on the best branch to the
	// spending transaction's ID, making FindSpender — the recipient's
	// claim watch — an O(1) lookup.
	spenders map[OutPoint]Hash
	// miners is the set of authorized miner public keys (hex of the
	// serialized point). Empty means any signed block is accepted.
	miners map[string]bool
	// pruneBase is the pruned horizon: best-branch blocks at heights
	// 1..pruneBase are header-only stubs with no bodies, indexes or undo
	// journals. 0 means nothing is pruned. Reorgs forking at or below
	// the base are rejected (ErrPrunedFork).
	pruneBase int64
	// verifier runs script verification for block connect and reorg
	// replay; shared (via Verifier()) with the mempool and miner so a
	// script pair checked at mempool admission is a cache hit at block
	// connect.
	verifier *Verifier

	// subscribers receive every block that becomes part of the best
	// branch (including reorged-in blocks).
	subscribers []func(*Block)

	// metrics is nil until Instrument is called; every use is guarded
	// so an uninstrumented chain pays only the nil check.
	metrics *chainMetrics
}

// txLoc is one txIndex entry: the transaction and the height of its
// best-branch block.
type txLoc struct {
	tx     *Tx
	height int64
}

// Chain errors.
var (
	// ErrDuplicateBlock reports a block already in the index.
	ErrDuplicateBlock = errors.New("chain: duplicate block")
	// ErrInvalidGenesis reports a genesis block that fails validation.
	ErrInvalidGenesis = errors.New("chain: invalid genesis block")
	// ErrInconsistentState reports that the incremental UTXO set or the
	// chain indexes diverged from a from-genesis replay — the debug
	// cross-check failing.
	ErrInconsistentState = errors.New("chain: incremental state inconsistent with replay")
)

// New creates a chain from a genesis block. The genesis block is not
// signature-checked (it is configuration, like Multichain's params.dat).
func New(params Params, genesis *Block) (*Chain, error) {
	if genesis == nil || len(genesis.Txs) == 0 || genesis.Header.Height != 0 {
		return nil, ErrInvalidGenesis
	}
	if MerkleRoot(genesis.Txs) != genesis.Header.MerkleRoot {
		return nil, fmt.Errorf("%w: merkle root mismatch", ErrInvalidGenesis)
	}
	utxo := NewUTXOSet()
	for _, tx := range genesis.Txs {
		if err := utxo.ApplyTx(tx, 0); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidGenesis, err)
		}
	}
	c := &Chain{
		params:   params,
		genesis:  genesis,
		index:    map[Hash]*Block{genesis.ID(): genesis},
		best:     []*Block{genesis},
		utxo:     utxo,
		undo:     make(map[Hash]*BlockUndo),
		txIndex:  make(map[Hash]txLoc),
		spenders: make(map[OutPoint]Hash),
		miners:   make(map[string]bool),
		verifier: NewVerifier(params.VerifyWorkers, NewSigCache(DefaultSigCacheSize)),
	}
	c.indexBlockTxs(genesis)
	return c, nil
}

// AuthorizeMiner adds a public key to the permissioned miner set.
func (c *Chain) AuthorizeMiner(pubKey []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.miners[string(pubKey)] = true
}

// Params returns the chain parameters.
func (c *Chain) Params() Params { return c.params }

// Verifier returns the chain's script verifier (worker pool + signature
// cache). The mempool and miner share it so verification work done at
// admission is not repeated at block connect.
func (c *Chain) Verifier() *Verifier { return c.verifier }

// Genesis returns the genesis block.
func (c *Chain) Genesis() *Block { return c.genesis }

// Height returns the best-branch tip height.
func (c *Chain) Height() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int64(len(c.best)) - 1
}

// Tip returns the best-branch tip block.
func (c *Chain) Tip() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.best[len(c.best)-1]
}

// BlockAt returns the best-branch block at the given height.
func (c *Chain) BlockAt(height int64) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if height < 0 || height >= int64(len(c.best)) {
		return nil, false
	}
	return c.best[height], true
}

// BlockByID returns any indexed block (best branch or side branch).
func (c *Chain) BlockByID(id Hash) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.index[id]
	return b, ok
}

// UTXO returns a snapshot copy of the best-branch UTXO set.
func (c *Chain) UTXO() *UTXOSet {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.utxo.Clone()
}

// Subscribe registers a callback invoked (synchronously, in AddBlock's
// caller) for every block that joins the best branch. Used by the
// registry scanner and the recipient's claim watcher.
func (c *Chain) Subscribe(fn func(*Block)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subscribers = append(c.subscribers, fn)
}

// AddBlock validates and accepts a block, extending the best branch, or
// storing (and possibly reorganizing to) a side branch.
func (c *Chain) AddBlock(b *Block) error {
	c.mu.Lock()
	var notify []*Block
	err := c.addBlockLocked(b, &notify)
	subs := make([]func(*Block), len(c.subscribers))
	copy(subs, c.subscribers)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	for _, nb := range notify {
		for _, fn := range subs {
			fn(nb)
		}
	}
	return nil
}

func (c *Chain) addBlockLocked(b *Block, notify *[]*Block) error {
	return c.addBlockPolicy(b, notify, c.params)
}

// addBlockPolicy is addBlockLocked with an explicit parameter set, so
// the trusted store-restore path can run the same code with script
// verification switched off.
func (c *Chain) addBlockPolicy(b *Block, notify *[]*Block, params Params) error {
	var start time.Time
	if c.metrics != nil {
		start = time.Now()
	}
	id := b.ID()
	if _, dup := c.index[id]; dup {
		return ErrDuplicateBlock
	}
	parent, ok := c.index[b.Header.PrevBlock]
	if !ok {
		return fmt.Errorf("%w: %s", ErrBadPrevBlock, b.Header.PrevBlock)
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: block %d on parent %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	if len(c.miners) > 0 && !c.miners[string(b.Header.MinerPubKey)] {
		return ErrUnknownMiner
	}
	if !b.Header.VerifySignature() {
		return ErrBadMinerSig
	}
	if err := checkBlockStateless(b, params); err != nil {
		return err
	}

	tip := c.best[len(c.best)-1]
	if parent == tip {
		// The common case: extend the best branch in place, journaling
		// the mutations. connectBlockUndo rolls the set back itself on
		// failure.
		undo, err := connectBlockUndo(c.utxo, b, params, c.verifier)
		if err != nil {
			return err
		}
		c.index[id] = b
		c.undo[id] = undo
		c.indexBlockTxs(b)
		c.best = append(c.best, b)
		*notify = append(*notify, b)
		c.noteConnect(b, start)
		return nil
	}

	// Side branch. The block must link back to genesis; full UTXO
	// validation is deferred until its branch takes the lead (cheap
	// header, signature and stateless checks already ran above).
	branch, err := c.branchTo(parent)
	if err != nil {
		return err
	}
	branch = append(branch, b)
	c.index[id] = b
	if len(branch) <= len(c.best) {
		return nil
	}
	if err := c.reorgLocked(branch, notify); err != nil {
		delete(c.index, id)
		return err
	}
	c.noteConnect(b, start)
	return nil
}

// reorgLocked switches the best branch to the strictly longer candidate:
// the losing suffix is disconnected through its undo journals and the
// winning suffix connected with full validation, in O(reorg depth)
// total. If a winning block fails validation the chain is restored to
// its pre-reorg state exactly and the error returned.
func (c *Chain) reorgLocked(branch []*Block, notify *[]*Block) error {
	fork := commonPrefixLen(c.best, branch)
	if int64(fork) <= c.pruneBase {
		// Disconnecting down to the fork would unwind pruned heights,
		// whose bodies and undo journals are gone.
		return fmt.Errorf("%w: fork at height %d, prune base %d", ErrPrunedFork, fork, c.pruneBase)
	}
	detached := append([]*Block(nil), c.best[fork:]...)

	// Disconnect the losing suffix, tip first, fanning each block's
	// journal out per shard when a worker pool is configured.
	for i := len(c.best) - 1; i >= fork; i-- {
		blk := c.best[i]
		blkID := blk.ID()
		if err := c.utxo.UndoBlockWorkers(c.undo[blkID], c.verifier.Workers()); err != nil {
			// Journal corruption — never expected; surface loudly.
			panic(fmt.Sprintf("chain: disconnect height %d: %v", i, err))
		}
		c.unindexBlockTxs(blk)
		delete(c.undo, blkID)
	}
	c.best = c.best[:fork:fork]

	// Connect the winning suffix.
	for j := fork; j < len(branch); j++ {
		blk := branch[j]
		undo, err := connectBlockUndo(c.utxo, blk, c.params, c.verifier)
		if err != nil {
			c.restoreBranch(fork, detached)
			return fmt.Errorf("chain: reorg connect height %d (%s): %w", j, blk.ID(), err)
		}
		blkID := blk.ID()
		c.undo[blkID] = undo
		c.indexBlockTxs(blk)
		c.best = append(c.best, blk)
	}
	*notify = append(*notify, branch[fork:]...)
	if m := c.metrics; m != nil {
		if depth := len(detached); depth > 0 {
			m.reorgs.Inc()
			m.reorgDepth.Set(int64(depth))
			m.blocksDisconnected.Add(uint64(depth))
		}
	}
	return nil
}

// restoreBranch rolls a half-connected reorg back: blocks connected so
// far are disconnected through their fresh journals, then the original
// suffix is re-applied trusted (it was fully validated when it first
// connected).
func (c *Chain) restoreBranch(fork int, detached []*Block) {
	for i := len(c.best) - 1; i >= fork; i-- {
		blk := c.best[i]
		blkID := blk.ID()
		if err := c.utxo.UndoBlockWorkers(c.undo[blkID], c.verifier.Workers()); err != nil {
			panic(fmt.Sprintf("chain: reorg rollback at height %d: %v", i, err))
		}
		c.unindexBlockTxs(blk)
		delete(c.undo, blkID)
	}
	c.best = c.best[:fork:fork]
	for _, blk := range detached {
		undo, err := applyBlockTrusted(c.utxo, blk)
		if err != nil {
			panic(fmt.Sprintf("chain: reorg restore height %d: %v", blk.Header.Height, err))
		}
		c.undo[blk.ID()] = undo
		c.indexBlockTxs(blk)
		c.best = append(c.best, blk)
	}
}

// noteConnect records the per-connect metrics.
func (c *Chain) noteConnect(b *Block, start time.Time) {
	m := c.metrics
	if m == nil {
		return
	}
	m.connectSeconds.ObserveSince(start)
	m.blocksConnected.Inc()
	m.txsVerified.Add(uint64(len(b.Txs) - 1))
	var scripts uint64
	for _, tx := range b.Txs[1:] {
		scripts += uint64(len(tx.Inputs))
	}
	m.scriptsVerified.Add(scripts)
	m.utxoSize.Set(int64(c.utxo.Len()))
	m.txIndexSize.Set(int64(len(c.txIndex)))
	m.spenderIndexSize.Set(int64(len(c.spenders)))
}

// indexBlockTxs adds a connected block's transactions to the txid and
// spender indexes.
func (c *Chain) indexBlockTxs(b *Block) {
	h := b.Header.Height
	for _, tx := range b.Txs {
		c.txIndex[tx.ID()] = txLoc{tx: tx, height: h}
		if tx.IsCoinbase() {
			continue
		}
		id := tx.ID()
		for _, in := range tx.Inputs {
			c.spenders[in.Prev] = id
		}
	}
}

// unindexBlockTxs removes a disconnected block's transactions from the
// txid and spender indexes.
func (c *Chain) unindexBlockTxs(b *Block) {
	for _, tx := range b.Txs {
		delete(c.txIndex, tx.ID())
		if tx.IsCoinbase() {
			continue
		}
		for _, in := range tx.Inputs {
			delete(c.spenders, in.Prev)
		}
	}
}

// branchTo walks parent links from b back to genesis.
func (c *Chain) branchTo(b *Block) ([]*Block, error) {
	branch := make([]*Block, b.Header.Height+1)
	cur := b
	for {
		if cur.Header.Height < 0 || int(cur.Header.Height) >= len(branch) {
			return nil, fmt.Errorf("%w: inconsistent height %d", ErrBadHeight, cur.Header.Height)
		}
		branch[cur.Header.Height] = cur
		if cur.Header.Height == 0 {
			break
		}
		parent, ok := c.index[cur.Header.PrevBlock]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrBadPrevBlock, cur.Header.PrevBlock)
		}
		cur = parent
	}
	if branch[0] != c.genesis {
		return nil, fmt.Errorf("%w: branch does not reach genesis", ErrBadPrevBlock)
	}
	return branch, nil
}

// replayBranch replays a branch from genesis into a fresh UTXO set
// through the full validation path. The live chain never uses it — the
// incremental undo journals replaced the replay — but it survives as
// the debug cross-check behind CheckConsistency: the O(n) ground truth
// the O(depth) path must agree with byte for byte.
func (c *Chain) replayBranch(branch []*Block) (*UTXOSet, error) {
	utxo := NewUTXOSet()
	for i, blk := range branch {
		if i == 0 {
			for _, tx := range blk.Txs {
				if err := utxo.ApplyTx(tx, 0); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := connectBlock(utxo, blk, c.params, c.verifier); err != nil {
			return nil, fmt.Errorf("replay height %d: %w", i, err)
		}
	}
	return utxo, nil
}

// CheckConsistency replays the best branch from genesis and verifies
// that the incrementally maintained UTXO set and chain indexes match the
// replay exactly. It is O(chain length) — a debug and test cross-check,
// also wired into the chaos invariants — and returns
// ErrInconsistentState (wrapped with detail) on divergence.
func (c *Chain) CheckConsistency() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.pruneBase > 0 {
		return c.checkConsistencyPrunedLocked()
	}
	replayed, err := c.replayBranch(c.best)
	if err != nil {
		return fmt.Errorf("%w: replay failed: %v", ErrInconsistentState, err)
	}
	if !c.utxo.Equal(replayed) {
		return fmt.Errorf("%w: utxo set diverged (incremental %d entries, replay %d)",
			ErrInconsistentState, c.utxo.Len(), replayed.Len())
	}
	// Rebuild the indexes from the best branch and compare.
	var txs, spends int
	for _, blk := range c.best {
		for _, tx := range blk.Txs {
			txs++
			loc, ok := c.txIndex[tx.ID()]
			if !ok || loc.height != blk.Header.Height || loc.tx != tx {
				return fmt.Errorf("%w: txIndex entry for %s wrong or missing", ErrInconsistentState, tx.ID())
			}
			if tx.IsCoinbase() {
				continue
			}
			for _, in := range tx.Inputs {
				spends++
				if c.spenders[in.Prev] != tx.ID() {
					return fmt.Errorf("%w: spender index for %s wrong or missing", ErrInconsistentState, in.Prev)
				}
			}
		}
	}
	if txs != len(c.txIndex) {
		return fmt.Errorf("%w: txIndex has %d entries, best branch has %d txs", ErrInconsistentState, len(c.txIndex), txs)
	}
	if spends != len(c.spenders) {
		return fmt.Errorf("%w: spender index has %d entries, best branch has %d spends", ErrInconsistentState, len(c.spenders), spends)
	}
	// Every best-branch block above genesis must hold an undo journal.
	for _, blk := range c.best[1:] {
		if _, ok := c.undo[blk.ID()]; !ok {
			return fmt.Errorf("%w: missing undo journal for height %d", ErrInconsistentState, blk.Header.Height)
		}
	}
	return nil
}

// checkConsistencyPrunedLocked is the pruned-chain variant of
// CheckConsistency: genesis replay is impossible once bodies below the
// horizon are gone, so the ground truth becomes the undo journals —
// unwind the tip set to the prune base, re-apply the unpruned suffix
// through full validation, and require the round trip to land exactly
// on the incrementally maintained state. Indexes are checked over
// genesis plus the unpruned suffix only.
func (c *Chain) checkConsistencyPrunedLocked() error {
	base := c.pruneBase
	rewound := c.utxo.Clone()
	for h := int64(len(c.best)) - 1; h > base; h-- {
		undo, ok := c.undo[c.best[h].ID()]
		if !ok {
			return fmt.Errorf("%w: missing undo journal for height %d", ErrInconsistentState, h)
		}
		if err := rewound.UndoBlock(undo); err != nil {
			return fmt.Errorf("%w: unwind height %d: %v", ErrInconsistentState, h, err)
		}
	}
	for h := base + 1; h < int64(len(c.best)); h++ {
		if err := connectBlock(rewound, c.best[h], c.params, c.verifier); err != nil {
			return fmt.Errorf("%w: re-apply height %d: %v", ErrInconsistentState, h, err)
		}
	}
	if !c.utxo.Equal(rewound) {
		return fmt.Errorf("%w: utxo set diverged after unwind/re-apply round trip (incremental %d entries, round trip %d)",
			ErrInconsistentState, c.utxo.Len(), rewound.Len())
	}
	// Stubs must stay stubs, and indexed txs/spends must come from
	// genesis plus the unpruned suffix exactly.
	for h := int64(1); h <= base; h++ {
		if len(c.best[h].Txs) != 0 {
			return fmt.Errorf("%w: pruned height %d still holds a body", ErrInconsistentState, h)
		}
	}
	var txs, spends int
	checkBlock := func(blk *Block) error {
		for _, tx := range blk.Txs {
			txs++
			loc, ok := c.txIndex[tx.ID()]
			if !ok || loc.height != blk.Header.Height || loc.tx != tx {
				return fmt.Errorf("%w: txIndex entry for %s wrong or missing", ErrInconsistentState, tx.ID())
			}
			if tx.IsCoinbase() {
				continue
			}
			for _, in := range tx.Inputs {
				spends++
				if c.spenders[in.Prev] != tx.ID() {
					return fmt.Errorf("%w: spender index for %s wrong or missing", ErrInconsistentState, in.Prev)
				}
			}
		}
		return nil
	}
	if err := checkBlock(c.best[0]); err != nil {
		return err
	}
	for h := base + 1; h < int64(len(c.best)); h++ {
		if err := checkBlock(c.best[h]); err != nil {
			return err
		}
	}
	if txs != len(c.txIndex) {
		return fmt.Errorf("%w: txIndex has %d entries, unpruned blocks have %d txs", ErrInconsistentState, len(c.txIndex), txs)
	}
	if spends != len(c.spenders) {
		return fmt.Errorf("%w: spender index has %d entries, unpruned blocks have %d spends", ErrInconsistentState, len(c.spenders), spends)
	}
	return nil
}

func commonPrefixLen(a, b []*Block) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// FindTx locates a best-branch transaction by ID through the maintained
// txid index — an O(1) lookup, where the seed scanned every transaction
// in every block. Confirmations = tip height − height + 1.
func (c *Chain) FindTx(id Hash) (*Tx, int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, ok := c.txIndex[id]
	if !ok {
		return nil, 0, false
	}
	return loc.tx, loc.height, true
}

// FindSpender locates the best-branch transaction spending the given
// outpoint through the maintained spender index — an O(1) lookup. The
// recipient uses it to spot the gateway's claim and extract the revealed
// ephemeral key (Fig. 3 step 10); with the index, the claim-watch loop
// no longer rescans the chain on every new block.
func (c *Chain) FindSpender(op OutPoint) (*Tx, int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.spenders[op]
	if !ok {
		return nil, 0, false
	}
	loc, ok := c.txIndex[id]
	if !ok {
		return nil, 0, false
	}
	return loc.tx, loc.height, true
}

// ReadState runs fn with the tip block and a read-only view of the tip
// UTXO set, under the chain's read lock. It lets hot paths (mempool
// admission, block-template assembly) layer a UTXOView overlay over the
// live set instead of deep-cloning it. fn must treat utxo as immutable
// and must not call back into Chain methods that take the lock (Tip,
// UTXO, AddBlock, …) — the values it needs are passed in.
func (c *Chain) ReadState(fn func(tip *Block, utxo UTXOReader)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn(c.best[len(c.best)-1], c.utxo)
}

// AddBlockTrusted connects a block whose scripts were validated when it
// was first persisted — the snapshot-restore path of the daemon store.
// Header linkage, miner authorization, signatures and all UTXO
// accounting rules still run; only script execution is skipped, which is
// what makes restart O(history txs) in map operations rather than
// signature verifications.
func (c *Chain) AddBlockTrusted(b *Block) error {
	c.mu.Lock()
	var notify []*Block
	params := c.params
	params.VerifyScripts = false
	err := c.addBlockPolicy(b, &notify, params)
	subs := make([]func(*Block), len(c.subscribers))
	copy(subs, c.subscribers)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	for _, nb := range notify {
		for _, fn := range subs {
			fn(nb)
		}
	}
	return nil
}

// Confirmations returns how many blocks confirm the transaction (1 =
// in the tip block), or 0 if unconfirmed.
func (c *Chain) Confirmations(id Hash) int64 {
	_, height, ok := c.FindTx(id)
	if !ok {
		return 0
	}
	return c.Height() - height + 1
}

// GenesisBlock builds a canonical genesis block paying initial funds to
// the given public key hashes. It is deterministic for reproducible
// simulations.
func GenesisBlock(allocations map[[20]byte]uint64) *Block {
	// Deterministic output order: sort by hash bytes.
	type alloc struct {
		hash  [20]byte
		value uint64
	}
	sorted := make([]alloc, 0, len(allocations))
	for h, v := range allocations {
		sorted = append(sorted, alloc{h, v})
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && lessHash(sorted[j].hash, sorted[j-1].hash); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	coinbase := &Tx{
		Inputs: []TxIn{{Prev: OutPoint{Index: coinbaseIndex}}},
	}
	for _, a := range sorted {
		coinbase.Outputs = append(coinbase.Outputs, TxOut{
			Value: a.value,
			Lock:  payToHash(a.hash),
		})
	}
	if len(coinbase.Outputs) == 0 {
		// A burn output so the genesis coinbase is well formed.
		coinbase.Outputs = append(coinbase.Outputs, TxOut{Value: 0, Lock: payToHash([20]byte{})})
	}
	b := &Block{
		Header: Header{Version: 1, Height: 0},
		Txs:    []*Tx{coinbase},
	}
	b.Header.MerkleRoot = MerkleRoot(b.Txs)
	return b
}

func lessHash(a, b [20]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func payToHash(h [20]byte) script.Script {
	return script.PayToPubKeyHash(h)
}
