package chain_test

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// shardedChainPair drives one seeded random fork/reorg schedule through
// two chains fed byte-identical blocks — one with VerifyWorkers=0 (the
// sequential connect path, semantically the pre-shard single-map
// implementation) and one with VerifyWorkers=8 (the sharded parallel
// connect/disconnect path) — and asserts after every accepted block
// that both chains serialize to byte-identical UTXO snapshots.
//
// Blocks carry enough transactions to clear the parallel dispatch
// threshold, so overtaking forks disconnect through UndoBlockWorkers
// and reconnect through connectBlockParallel on the workers=8 chain
// while the workers=0 chain exercises the sequential ground truth.

// shardSchedule is the generator state: the miner wallet, the wallet
// hash every output pays, and a monotonically bumped nonce keeping
// coinbase IDs unique across branches.
type shardSchedule struct {
	t      *testing.T
	rng    *mrand.Rand
	minerW *wallet.Wallet
	owner  [20]byte
	params chain.Params
	now    time.Time
	nonce  int64
}

// signedBlock assembles and signs a block of the given transactions on
// parent; the coinbase collects reward + fees and carries the nonce.
func (s *shardSchedule) signedBlock(parent *chain.Block, txs []*chain.Tx, fees uint64) *chain.Block {
	s.t.Helper()
	s.nonce++
	coinbase := &chain.Tx{
		Inputs: []chain.TxIn{{
			Prev: chain.OutPoint{Index: 0xffffffff},
			Unlock: script.NewBuilder().
				AddInt64(parent.Header.Height + 1).
				AddInt64(s.nonce).Script(),
		}},
		Outputs: []chain.TxOut{{
			Value: s.params.CoinbaseReward + fees,
			Lock:  script.PayToPubKeyHash(s.owner),
		}},
	}
	all := append([]*chain.Tx{coinbase}, txs...)
	b := &chain.Block{
		Header: chain.Header{
			Version:    1,
			PrevBlock:  parent.ID(),
			MerkleRoot: chain.MerkleRoot(all),
			Time:       s.now.UnixNano(),
			Height:     parent.Header.Height + 1,
		},
		Txs: all,
	}
	if err := b.Header.Sign(s.minerW.Key(), rand.Reader); err != nil {
		s.t.Fatal(err)
	}
	return b
}

// paymentBlock builds a block of up to maxTxs transactions spending the
// owner's mature outputs from the given UTXO view, each fanning back
// out to the owner. Scripts are unchecked in this schedule
// (VerifyScripts=false), so inputs carry no unlock data.
func (s *shardSchedule) paymentBlock(parent *chain.Block, utxo *chain.UTXOSet, maxTxs int) *chain.Block {
	s.t.Helper()
	height := parent.Header.Height + 1
	var pool []chain.OutPoint
	for _, op := range utxo.FindByPubKeyHash(s.owner) {
		e, ok := utxo.Get(op)
		if !ok {
			continue
		}
		if e.Coinbase && height-e.Height < s.params.CoinbaseMaturity {
			continue
		}
		pool = append(pool, op)
	}
	s.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	var txs []*chain.Tx
	var fees uint64
	for len(txs) < maxTxs && len(pool) > 0 {
		nIn := 1 + s.rng.Intn(2)
		if nIn > len(pool) {
			nIn = len(pool)
		}
		tx := &chain.Tx{Version: 1}
		var in uint64
		for j := 0; j < nIn; j++ {
			op := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			e, _ := utxo.Get(op)
			tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: op})
			in += e.Out.Value
		}
		fee := uint64(s.rng.Intn(3))
		if fee > in {
			fee = in
		}
		rest := in - fee
		nOut := 2 + s.rng.Intn(2)
		for j := 0; j < nOut; j++ {
			v := rest / uint64(nOut-j)
			tx.Outputs = append(tx.Outputs, chain.TxOut{
				Value: v,
				Lock:  script.PayToPubKeyHash(s.owner),
			})
			rest -= v
		}
		fees += fee
		txs = append(txs, tx)
	}
	return s.signedBlock(parent, txs, fees)
}

// snapshotHash serializes a chain's UTXO set and hashes it.
func snapshotHash(c *chain.Chain) chain.Hash {
	return chain.SnapshotHash(c.UTXO().SerializeUTXO())
}

func TestShardedSnapshotParityAcrossReorgs(t *testing.T) {
	for _, seed := range []int64{2, 19, 101, 9001} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			minerW, err := wallet.New(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ownerW, err := wallet.New(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}

			mkParams := func(workers int) chain.Params {
				p := chain.DefaultParams()
				p.VerifyScripts = false
				p.VerifyWorkers = workers
				p.CoinbaseMaturity = 2
				return p
			}
			genesis := chain.GenesisBlock(map[[20]byte]uint64{ownerW.PubKeyHash(): 1_000_000})
			mkChain := func(workers int) *chain.Chain {
				g, err := chain.DeserializeBlock(genesis.Serialize())
				if err != nil {
					t.Fatal(err)
				}
				c, err := chain.New(mkParams(workers), g)
				if err != nil {
					t.Fatal(err)
				}
				c.AuthorizeMiner(minerW.PublicBytes())
				return c
			}
			seq := mkChain(0)
			par := mkChain(8)

			s := &shardSchedule{
				t:      t,
				rng:    mrand.New(mrand.NewSource(seed)),
				minerW: minerW,
				owner:  ownerW.PubKeyHash(),
				params: mkParams(0),
				now:    time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC),
			}

			feed := func(step int, b *chain.Block) {
				t.Helper()
				raw := b.Serialize()
				bSeq, err := chain.DeserializeBlock(raw)
				if err != nil {
					t.Fatal(err)
				}
				bPar, err := chain.DeserializeBlock(raw)
				if err != nil {
					t.Fatal(err)
				}
				errSeq := seq.AddBlock(bSeq)
				errPar := par.AddBlock(bPar)
				if (errSeq == nil) != (errPar == nil) {
					t.Fatalf("step %d: sequential err %v, parallel err %v", step, errSeq, errPar)
				}
				if errSeq != nil && errSeq.Error() != errPar.Error() {
					t.Fatalf("step %d: error text diverged:\n  seq: %v\n  par: %v", step, errSeq, errPar)
				}
				if seq.Tip().ID() != par.Tip().ID() {
					t.Fatalf("step %d: tips diverged", step)
				}
				if hs, hp := snapshotHash(seq), snapshotHash(par); hs != hp {
					t.Fatalf("step %d: UTXO snapshot hashes diverged: %s vs %s", step, hs, hp)
				}
			}

			for step := 0; step < 25; step++ {
				s.now = s.now.Add(15 * time.Second)
				switch s.rng.Intn(4) {
				case 0, 1:
					// Extend the best branch with a transaction-heavy block
					// (clears the parallel dispatch threshold).
					feed(step, s.paymentBlock(seq.Tip(), seq.UTXO(), 8+s.rng.Intn(8)))
				case 2:
					// A losing side branch: no reorg on either chain.
					tip := seq.Tip()
					back := int64(1 + s.rng.Intn(2))
					forkH := tip.Header.Height - back
					if forkH < 0 {
						forkH = 0
						back = tip.Header.Height
					}
					parent, _ := seq.BlockAt(forkH)
					for j := int64(0); j < back; j++ {
						b := s.signedBlock(parent, nil, 0)
						feed(step, b)
						parent = b
					}
				case 3:
					// An overtaking fork: both chains disconnect the same
					// payment-heavy suffix and connect the fork. The fork's
					// own blocks re-spend from the fork-point view, so the
					// parallel reconnect is transaction-heavy too.
					tip := seq.Tip()
					depth := int64(1 + s.rng.Intn(2))
					forkH := tip.Header.Height - depth
					if forkH < 0 {
						forkH = 0
						depth = tip.Header.Height
					}
					parent, _ := seq.BlockAt(forkH)
					view, err := seq.StateAt(forkH)
					if err != nil {
						t.Fatalf("step %d: state at fork height %d: %v", step, forkH, err)
					}
					for j := int64(0); j <= depth; j++ {
						var b *chain.Block
						if j == 0 {
							b = s.paymentBlock(parent, view, 6)
						} else {
							b = s.signedBlock(parent, nil, 0)
						}
						feed(step, b)
						parent = b
					}
					if seq.Tip().ID() != parent.ID() {
						t.Fatalf("step %d: longer branch did not become best", step)
					}
				}
			}

			if err := seq.CheckConsistency(); err != nil {
				t.Fatalf("sequential chain inconsistent: %v", err)
			}
			if err := par.CheckConsistency(); err != nil {
				t.Fatalf("parallel chain inconsistent: %v", err)
			}
		})
	}
}
