package chain_test

import (
	"crypto/rand"
	"errors"
	"testing"

	"bcwan/internal/chain"
	"bcwan/internal/telemetry"
)

// TestMempoolPurgesDoubleSpendOnConnect covers the block-connect purge
// path: our node pools tx1, another miner confirms a conflicting tx2,
// and connecting that block must evict tx1 — otherwise the node keeps
// relaying and trying to mine a transaction the chain has already
// contradicted. The reject-reason telemetry is asserted along the way.
func TestMempoolPurgesDoubleSpendOnConnect(t *testing.T) {
	h := newHarness(t, chain.DefaultParams())
	reg := telemetry.NewRegistry()
	h.mempool.Instrument(reg)
	conflicts := func() uint64 {
		return reg.Counter("bcwan_mempool_rejected_total",
			"Transactions rejected at admission, by reason.",
			telemetry.L("reason", "conflict")).Value()
	}

	// tx1: alice pays bob; our node pools it.
	tx1, err := h.alice.BuildPayment(h.chain.UTXO(), h.bob.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.accept(tx1)

	// tx2 spends the same coins back to alice. Our pool rejects it
	// (first-seen rule) and counts the conflict.
	tx2, err := h.alice.BuildPayment(h.chain.UTXO(), h.alice.PubKeyHash(), 400, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mempool.Accept(tx2, h.chain.UTXO(), h.chain.Height(), h.params); !errors.Is(err, chain.ErrMempoolConflict) {
		t.Fatalf("accepting conflicting tx: err = %v, want ErrMempoolConflict", err)
	}
	if got := conflicts(); got != 1 {
		t.Fatalf("conflict reject counter = %d, want 1", got)
	}

	// Another miner (same authorized key, its own pool) confirms tx2.
	pool2 := chain.NewMempool()
	if err := pool2.Accept(tx2, h.chain.UTXO(), h.chain.Height(), h.params); err != nil {
		t.Fatalf("second miner pool: %v", err)
	}
	miner2 := chain.NewMiner(h.minerW.Key(), h.chain, pool2, rand.Reader)
	b, err := miner2.Mine(h.now.Add(h.params.BlockInterval))
	if err != nil {
		t.Fatalf("mining conflicting block: %v", err)
	}
	if _, _, ok := h.chain.FindTx(tx2.ID()); !ok {
		t.Fatal("conflicting tx2 not confirmed by the block")
	}

	// Connecting the block purges the contradicted tx1 from our pool.
	h.mempool.RemoveConfirmed(b)
	if h.mempool.Contains(tx1.ID()) {
		t.Fatal("tx1 still pooled after a block confirmed a conflicting spend")
	}
	if h.mempool.Len() != 0 {
		t.Fatalf("mempool still holds %d transactions", h.mempool.Len())
	}

	// Re-offering the purged tx1 now fails UTXO validation (its inputs
	// are gone) and is counted under a non-conflict reason.
	if err := h.mempool.Accept(tx1, h.chain.UTXO(), h.chain.Height(), h.params); err == nil {
		t.Fatal("tx1 re-admitted although its inputs are spent on-chain")
	}
	if got := conflicts(); got != 1 {
		t.Fatalf("conflict counter moved to %d on a missing-input reject, want 1", got)
	}
	invalid := reg.Counter("bcwan_mempool_rejected_total",
		"Transactions rejected at admission, by reason.",
		telemetry.L("reason", "invalid")).Value()
	if invalid != 1 {
		t.Fatalf("invalid reject counter = %d, want 1", invalid)
	}
}
