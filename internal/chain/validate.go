package chain

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	ErrEmptyTx         = errors.New("chain: transaction has no inputs or outputs")
	ErrValueOverflow   = errors.New("chain: output value overflow")
	ErrDuplicateInput  = errors.New("chain: duplicate input within transaction")
	ErrInsufficientIn  = errors.New("chain: inputs worth less than outputs")
	ErrImmatureSpend   = errors.New("chain: coinbase spent before maturity")
	ErrTxNotFinal      = errors.New("chain: lock time not yet reached")
	ErrBadCoinbase     = errors.New("chain: malformed coinbase placement")
	ErrBadMerkleRoot   = errors.New("chain: merkle root mismatch")
	ErrBadHeight       = errors.New("chain: wrong block height")
	ErrBadPrevBlock    = errors.New("chain: unknown previous block")
	ErrBadMinerSig     = errors.New("chain: invalid miner signature")
	ErrUnknownMiner    = errors.New("chain: miner not authorized")
	ErrExcessSubsidy   = errors.New("chain: coinbase pays more than reward plus fees")
	ErrTooManyBlockTxs = errors.New("chain: block exceeds transaction limit")
)

// maxMoney caps total supply-related arithmetic to keep sums far from
// uint64 overflow.
const maxMoney = 1 << 50

// CheckTxSanity performs stateless transaction checks.
func CheckTxSanity(tx *Tx) error {
	if len(tx.Inputs) == 0 || len(tx.Outputs) == 0 {
		return ErrEmptyTx
	}
	if tx.SerializedSize() > maxTxSize {
		return ErrTxTooLarge
	}
	var total uint64
	for _, out := range tx.Outputs {
		if out.Value > maxMoney {
			return ErrValueOverflow
		}
		total += out.Value
		if total > maxMoney {
			return ErrValueOverflow
		}
	}
	seen := make(map[OutPoint]bool, len(tx.Inputs))
	if !tx.IsCoinbase() {
		for _, in := range tx.Inputs {
			if in.Prev.TxID.IsZero() {
				return ErrBadCoinbase
			}
			if seen[in.Prev] {
				return fmt.Errorf("%w: %s", ErrDuplicateInput, in.Prev)
			}
			seen[in.Prev] = true
		}
	}
	return nil
}

// connectTxUTXO is the sequential UTXO-accounting pass of transaction
// validation: sanity, finality, spendability, maturity and value
// conservation. Script execution is *not* performed; instead the
// (input, locking script) pairs that still need verification are
// appended to jobs, tagged with txIdx, for a later — possibly parallel —
// script pass. Callers that want the seed's fused behavior run the
// returned jobs immediately.
func connectTxUTXO(utxo UTXOReader, tx *Tx, txIdx int, height, maturity int64, jobs []verifyJob) (fee uint64, outJobs []verifyJob, err error) {
	if err := CheckTxSanity(tx); err != nil {
		return 0, jobs, err
	}
	if tx.IsCoinbase() {
		return 0, jobs, nil
	}
	if tx.LockTime > height {
		return 0, jobs, fmt.Errorf("%w: lock time %d, height %d", ErrTxNotFinal, tx.LockTime, height)
	}
	var inValue, outValue uint64
	for i, in := range tx.Inputs {
		entry, ok := utxo.Get(in.Prev)
		if !ok {
			return 0, jobs, fmt.Errorf("%w: %s", ErrMissingUTXO, in.Prev)
		}
		if entry.Coinbase && height-entry.Height < maturity {
			return 0, jobs, fmt.Errorf("%w: %s at height %d, spend at %d",
				ErrImmatureSpend, in.Prev, entry.Height, height)
		}
		inValue += entry.Out.Value
		jobs = append(jobs, verifyJob{tx: tx, txIdx: txIdx, inputIdx: i, lock: entry.Out.Lock})
	}
	for _, out := range tx.Outputs {
		outValue += out.Value
	}
	if inValue < outValue {
		return 0, jobs, fmt.Errorf("%w: in %d, out %d", ErrInsufficientIn, inValue, outValue)
	}
	return inValue - outValue, jobs, nil
}

// ConnectTx validates tx against the UTXO view at the given height and
// returns the fee it pays. When verifyScripts is false the script pair is
// not executed — the configuration the paper measures in Fig. 5.
//
// Scripts are verified sequentially and uncached; consumers on the hot
// path use ConnectTxVerified with a shared Verifier instead.
func ConnectTx(utxo UTXOReader, tx *Tx, height int64, maturity int64, verifyScripts bool) (fee uint64, err error) {
	return ConnectTxVerified(utxo, tx, height, maturity, verifyScripts, nil)
}

// ConnectTxVerified is ConnectTx with an explicit verifier: the UTXO
// accounting pass runs sequentially, then the script pass runs through v
// (worker pool + signature cache). A nil verifier means sequential and
// uncached.
func ConnectTxVerified(utxo UTXOReader, tx *Tx, height, maturity int64, verifyScripts bool, v *Verifier) (fee uint64, err error) {
	fee, jobs, err := connectTxUTXO(utxo, tx, 0, height, maturity, nil)
	if err != nil {
		return 0, err
	}
	if !verifyScripts {
		return fee, nil
	}
	if err := v.verifyJobs(jobs); err != nil {
		// Single-transaction callers expect the bare input error, not
		// the block-position wrapper.
		return 0, errors.Unwrap(err)
	}
	return fee, nil
}

// connectBlock validates every rule that depends on the UTXO view and
// mutates utxo on success. The caller has already validated the header
// linkage.
//
// Validation is two-pass: a sequential UTXO-accounting sweep over the
// block (order-dependent — outputs created by tx i are spendable by tx
// i+1) collects every script pair to check, then the verifier fans the
// accumulated jobs out across cores. Script execution never touches the
// UTXO set, so the split preserves accept/reject decisions exactly; the
// utxo argument is a scratch view the caller only adopts on success.
func connectBlock(utxo *UTXOSet, b *Block, params Params, v *Verifier) error {
	if len(b.Txs) == 0 {
		return ErrNoTxs
	}
	if len(b.Txs) > params.MaxBlockTxs {
		return ErrTooManyBlockTxs
	}
	if !b.Txs[0].IsCoinbase() {
		return ErrBadCoinbase
	}
	if MerkleRoot(b.Txs) != b.Header.MerkleRoot {
		return ErrBadMerkleRoot
	}
	var fees uint64
	var jobs []verifyJob
	spentInBlock := make(map[OutPoint]bool)
	for i, tx := range b.Txs {
		if i > 0 && tx.IsCoinbase() {
			return ErrBadCoinbase
		}
		if !tx.IsCoinbase() {
			for _, in := range tx.Inputs {
				if spentInBlock[in.Prev] {
					return fmt.Errorf("chain: double spend of %s within block", in.Prev)
				}
				spentInBlock[in.Prev] = true
			}
		}
		var fee uint64
		var err error
		fee, jobs, err = connectTxUTXO(utxo, tx, i, b.Header.Height, params.CoinbaseMaturity, jobs)
		if err != nil {
			return fmt.Errorf("tx %d (%s): %w", i, tx.ID(), err)
		}
		fees += fee
		if err := utxo.ApplyTx(tx, b.Header.Height); err != nil {
			return fmt.Errorf("tx %d (%s): %w", i, tx.ID(), err)
		}
	}
	var coinbaseOut uint64
	for _, out := range b.Txs[0].Outputs {
		coinbaseOut += out.Value
	}
	if coinbaseOut > params.CoinbaseReward+fees {
		return fmt.Errorf("%w: pays %d, allowed %d", ErrExcessSubsidy, coinbaseOut, params.CoinbaseReward+fees)
	}
	if params.VerifyScripts {
		if err := v.verifyJobs(jobs); err != nil {
			return err
		}
	}
	return nil
}

// checkBlockStateless runs every block rule that needs no UTXO view:
// shape, coinbase placement, transaction limit, merkle root. These run
// for every arriving block, including side-branch blocks whose full
// validation is deferred until their branch takes the lead.
func checkBlockStateless(b *Block, params Params) error {
	if len(b.Txs) == 0 {
		return ErrNoTxs
	}
	if len(b.Txs) > params.MaxBlockTxs {
		return ErrTooManyBlockTxs
	}
	if !b.Txs[0].IsCoinbase() {
		return ErrBadCoinbase
	}
	for i, tx := range b.Txs[1:] {
		if tx.IsCoinbase() {
			return ErrBadCoinbase
		}
		if err := CheckTxSanity(tx); err != nil {
			return fmt.Errorf("tx %d (%s): %w", i+1, tx.ID(), err)
		}
	}
	if MerkleRoot(b.Txs) != b.Header.MerkleRoot {
		return ErrBadMerkleRoot
	}
	return nil
}

// connectBlockUndo is the incremental counterpart of connectBlock: it
// validates the block against — and applies it directly to — the live
// UTXO set, journaling every mutation. On any failure (UTXO accounting
// or script verification) the partial mutations are unwound through the
// journal before returning, so the set is exactly as it was. On success
// the returned journal lets a reorganization disconnect the block in
// O(block txs).
func connectBlockUndo(utxo *UTXOSet, b *Block, params Params, v *Verifier) (*BlockUndo, error) {
	if err := checkBlockStateless(b, params); err != nil {
		return nil, err
	}
	// Blocks with enough mutations fan out per UTXO shard when a worker
	// pool is configured; the sequential path below is the ground truth
	// (and what CheckConsistency replays against).
	if v.Workers() > 1 && blockOpCount(b) >= parallelConnectMinOps {
		return connectBlockParallel(utxo, b, params, v)
	}
	undo := &BlockUndo{Txs: make([]*TxUndo, 0, len(b.Txs))}
	rollback := func() {
		for i := len(undo.Txs) - 1; i >= 0; i-- {
			// Undoing a journal we just recorded cannot fail unless the
			// set was corrupted concurrently; the chain lock excludes
			// that.
			if err := utxo.UndoTx(undo.Txs[i]); err != nil {
				panic(fmt.Sprintf("chain: rollback failed: %v", err))
			}
		}
	}
	var fees uint64
	var jobs []verifyJob
	for i, tx := range b.Txs {
		var fee uint64
		var err error
		fee, jobs, err = connectTxUTXO(utxo, tx, i, b.Header.Height, params.CoinbaseMaturity, jobs)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("tx %d (%s): %w", i, tx.ID(), err)
		}
		fees += fee
		// ApplyTxUndo re-checks input existence, which also catches
		// in-block double spends: the first spend removed the entry.
		txUndo, err := utxo.ApplyTxUndo(tx, b.Header.Height)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("tx %d (%s): %w", i, tx.ID(), err)
		}
		undo.Txs = append(undo.Txs, txUndo)
	}
	var coinbaseOut uint64
	for _, out := range b.Txs[0].Outputs {
		coinbaseOut += out.Value
	}
	if coinbaseOut > params.CoinbaseReward+fees {
		rollback()
		return nil, fmt.Errorf("%w: pays %d, allowed %d", ErrExcessSubsidy, coinbaseOut, params.CoinbaseReward+fees)
	}
	if params.VerifyScripts {
		if err := v.verifyJobs(jobs); err != nil {
			rollback()
			return nil, err
		}
	}
	return undo, nil
}

// applyBlockTrusted connects a block that was fully validated when it
// was first on the best branch, re-capturing its undo journal without
// re-running validation. Used only to restore the original branch after
// a failed reorganization attempt.
func applyBlockTrusted(utxo *UTXOSet, b *Block) (*BlockUndo, error) {
	undo := &BlockUndo{Txs: make([]*TxUndo, 0, len(b.Txs))}
	for _, tx := range b.Txs {
		txUndo, err := utxo.ApplyTxUndo(tx, b.Header.Height)
		if err != nil {
			return nil, err
		}
		undo.Txs = append(undo.Txs, txUndo)
	}
	return undo, nil
}
