package chain

import (
	"fmt"
	mrand "math/rand"
	"testing"

	"bcwan/internal/script"
)

// Internal parity tests for the sharded parallel connect/disconnect
// engine: on identical inputs, connectBlockParallel must make exactly
// the same accept/reject decision as the sequential connectBlockUndo,
// report the identical error string, and leave an identical UTXO set
// (mutated on success, untouched on failure). Blocks here are built
// synthetically — no signatures, VerifyScripts off — because this layer
// validates UTXO accounting only; header and script rules live above
// and beside it.

// testOutpoint derives a deterministic outpoint from a seed.
func testOutpoint(rng *mrand.Rand) OutPoint {
	var op OutPoint
	rng.Read(op.TxID[:])
	op.Index = uint32(rng.Intn(4))
	return op
}

func randLock(rng *mrand.Rand) script.Script {
	var h [20]byte
	rng.Read(h[:])
	return script.PayToPubKeyHash(h)
}

func TestShardIndexSpread(t *testing.T) {
	rng := mrand.New(mrand.NewSource(99))
	var counts [utxoShardCount]int
	const n = 16_000
	for i := 0; i < n; i++ {
		si := shardIndex(testOutpoint(rng))
		if si < 0 || si >= utxoShardCount {
			t.Fatalf("shard index %d out of range", si)
		}
		counts[si]++
	}
	// Uniform expectation is n/16 = 1000 per shard; allow a generous
	// ±50% band, enough to catch a broken hash fold without flaking.
	for si, c := range counts {
		if c < n/utxoShardCount/2 || c > n/utxoShardCount*2 {
			t.Fatalf("shard %d holds %d of %d outpoints — hash fold is skewed", si, c, n)
		}
	}
}

// shardWorld is the evolving ground-truth state of the parity test: the
// canonical UTXO set plus the bookkeeping needed to build spendable
// (and deliberately unspendable) transactions against it.
type shardWorld struct {
	utxo   *UTXOSet
	rng    *mrand.Rand
	height int64
	// spendable tracks live non-coinbase outpoints with their values.
	spendable []SpentOutput
	// immature tracks recent coinbase outpoints (for maturity failures).
	immature []SpentOutput
	nonce    uint32
}

func newShardWorld(seed int64) *shardWorld {
	w := &shardWorld{utxo: NewUTXOSet(), rng: mrand.New(mrand.NewSource(seed)), height: 10}
	// Fund the world with mature, non-coinbase outputs.
	for i := 0; i < 64; i++ {
		op := testOutpoint(w.rng)
		e := UTXOEntry{Out: TxOut{Value: uint64(500 + w.rng.Intn(2000)), Lock: randLock(w.rng)}, Height: 1}
		if w.utxo.createLocked(op, e) {
			w.spendable = append(w.spendable, SpentOutput{Prev: op, Entry: e})
		}
	}
	return w
}

// takeSpendable removes and returns a random live outpoint.
func (w *shardWorld) takeSpendable() (SpentOutput, bool) {
	if len(w.spendable) == 0 {
		return SpentOutput{}, false
	}
	i := w.rng.Intn(len(w.spendable))
	s := w.spendable[i]
	w.spendable[i] = w.spendable[len(w.spendable)-1]
	w.spendable = w.spendable[:len(w.spendable)-1]
	return s, true
}

// coinbaseTx builds the block's coinbase paying reward+fees.
func (w *shardWorld) coinbaseTx(value uint64) *Tx {
	w.nonce++
	return &Tx{
		Inputs: []TxIn{{
			Prev:   OutPoint{Index: coinbaseIndex},
			Unlock: script.NewBuilder().AddInt64(w.height).AddInt64(int64(w.nonce)).Script(),
		}},
		Outputs: []TxOut{{Value: value, Lock: randLock(w.rng)}},
	}
}

// buildBlock assembles a block of nTxs payment transactions, each
// spending 1–3 live outpoints. mutate, when non-zero, injects one
// deliberate defect class into a random transaction.
func (w *shardWorld) buildBlock(nTxs, mutate int) *Block {
	params := DefaultParams()
	txs := make([]*Tx, 1, nTxs+1)
	var fees uint64
	for i := 0; i < nTxs; i++ {
		tx := &Tx{Version: 1}
		var in uint64
		nIn := 1 + w.rng.Intn(3)
		for j := 0; j < nIn; j++ {
			s, ok := w.takeSpendable()
			if !ok {
				break
			}
			tx.Inputs = append(tx.Inputs, TxIn{Prev: s.Prev})
			in += s.Entry.Out.Value
		}
		if len(tx.Inputs) == 0 {
			break
		}
		fee := uint64(w.rng.Intn(5))
		if fee > in {
			fee = in
		}
		out := in - fee
		nOut := 1 + w.rng.Intn(3)
		for j := 0; j < nOut; j++ {
			v := out / uint64(nOut-j)
			tx.Outputs = append(tx.Outputs, TxOut{Value: v, Lock: randLock(w.rng)})
			out -= v
		}
		fees += fee
		txs = append(txs, tx)
	}
	if mutate != 0 && len(txs) > 1 {
		victim := txs[1+w.rng.Intn(len(txs)-1)]
		switch mutate {
		case 1: // spend an unknown outpoint
			victim.Inputs[0].Prev = testOutpoint(w.rng)
		case 2: // in-block double spend across two txs
			if len(txs) > 2 {
				txs[len(txs)-1].Inputs[0].Prev = txs[1].Inputs[0].Prev
			}
		case 3: // outputs exceed inputs
			victim.Outputs[0].Value += 10_000
		case 4: // immature coinbase spend (turns into a legal spend once
			// the coinbase ages past maturity — either way both paths
			// must agree)
			if len(w.immature) > 0 {
				victim.Inputs[0].Prev = w.immature[w.rng.Intn(len(w.immature))].Prev
			}
		}
	}
	txs[0] = w.coinbaseTx(params.CoinbaseReward + fees)
	if mutate == 5 { // coinbase pays more than reward plus fees
		txs[0].Outputs[0].Value += 1 + uint64(w.rng.Intn(100))
	}
	b := &Block{
		Header: Header{Version: 1, Height: w.height, MerkleRoot: MerkleRoot(txs)},
		Txs:    txs,
	}
	return b
}

// adopt records a successfully connected block into the world's
// bookkeeping: spent inputs are gone (takeSpendable already removed
// them), created outputs become spendable or immature.
func (w *shardWorld) adopt(b *Block) {
	for _, tx := range b.Txs {
		id := tx.ID()
		cb := tx.IsCoinbase()
		for i, out := range tx.Outputs {
			so := SpentOutput{
				Prev:  OutPoint{TxID: id, Index: uint32(i)},
				Entry: UTXOEntry{Out: out, Height: b.Header.Height, Coinbase: cb},
			}
			if cb {
				w.immature = append(w.immature, so)
			} else {
				w.spendable = append(w.spendable, so)
			}
		}
	}
	w.height++
}

// restock returns a failed block's consumed inputs to the spendable
// pool (takeSpendable removed them optimistically).
func (w *shardWorld) restock(b *Block) {
	for _, tx := range b.Txs[1:] {
		for _, in := range tx.Inputs {
			if e, ok := w.utxo.Get(in.Prev); ok && !e.Coinbase {
				w.spendable = append(w.spendable, SpentOutput{Prev: in.Prev, Entry: e})
			}
		}
	}
}

// TestParallelConnectMatchesSequential drives seeded random blocks —
// mostly valid, with every defect class injected along the way — through
// both connect implementations side by side and requires bit-identical
// outcomes: same error text (or none), same serialized UTXO bytes, and
// journals that both unwind back to the identical pre-state.
func TestParallelConnectMatchesSequential(t *testing.T) {
	params := DefaultParams()
	params.VerifyScripts = false
	params.CoinbaseMaturity = 5
	seqV := NewVerifier(0, nil)
	parV := NewVerifier(8, nil)

	for _, seed := range []int64{3, 11, 71, 4242} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newShardWorld(seed)
			for step := 0; step < 40; step++ {
				mutate := 0
				if w.rng.Intn(3) == 0 {
					mutate = 1 + w.rng.Intn(5)
				}
				b := w.buildBlock(2+w.rng.Intn(6), mutate)
				if err := checkBlockStateless(b, params); err != nil {
					// Mutation produced a statelessly invalid block; both
					// paths sit behind this check, so skip it.
					w.restock(b)
					continue
				}

				seq := w.utxo.Clone()
				par := w.utxo.Clone()
				undoSeq, errSeq := connectBlockUndo(seq, b, params, seqV)
				undoPar, errPar := connectBlockParallel(par, b, params, parV)

				if (errSeq == nil) != (errPar == nil) {
					t.Fatalf("step %d: sequential err %v, parallel err %v", step, errSeq, errPar)
				}
				if errSeq != nil {
					if errSeq.Error() != errPar.Error() {
						t.Fatalf("step %d: error text diverged:\n  seq: %v\n  par: %v", step, errSeq, errPar)
					}
					// Failure must leave both sets untouched.
					if !seq.Equal(w.utxo) || !par.Equal(w.utxo) {
						t.Fatalf("step %d: failed connect mutated the set", step)
					}
					w.restock(b)
					continue
				}

				if !seq.Equal(par) {
					t.Fatalf("step %d: post-connect sets diverged", step)
				}
				sb, pb := seq.SerializeUTXO(), par.SerializeUTXO()
				if SnapshotHash(sb) != SnapshotHash(pb) {
					t.Fatalf("step %d: snapshot hashes diverged", step)
				}

				// Both journals must unwind to the identical pre-state.
				seqBack, parBack := seq.Clone(), par.Clone()
				if err := seqBack.UndoBlock(undoSeq); err != nil {
					t.Fatalf("step %d: sequential undo: %v", step, err)
				}
				if err := parBack.UndoBlockWorkers(undoPar, 8); err != nil {
					t.Fatalf("step %d: parallel undo: %v", step, err)
				}
				if !seqBack.Equal(w.utxo) || !parBack.Equal(w.utxo) {
					t.Fatalf("step %d: undo did not restore the pre-state", step)
				}

				w.utxo = seq
				w.adopt(b)
			}
		})
	}
}

// TestUndoBlockWorkersCorruptJournal pins the corruption errors of the
// parallel disconnect to the sequential messages.
func TestUndoBlockWorkersCorruptJournal(t *testing.T) {
	w := newShardWorld(5)
	b := w.buildBlock(8, 0)
	params := DefaultParams()
	params.VerifyScripts = false
	undo, err := connectBlockUndo(w.utxo, b, params, NewVerifier(0, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Deleting a created outpoint before the undo makes the journal
	// stale: "created outpoint missing".
	var victim OutPoint
	for _, tu := range undo.Txs {
		if len(tu.Created) > 0 {
			victim = tu.Created[0]
			break
		}
	}
	broken := w.utxo.Clone()
	if !broken.deleteLocked(victim) {
		t.Fatal("victim outpoint not in set")
	}
	errSeq := broken.Clone().UndoBlock(undo)
	errPar := broken.Clone().UndoBlockWorkers(undo, 8)
	if errSeq == nil || errPar == nil {
		t.Fatalf("corrupt journal undo: sequential err %v, parallel err %v", errSeq, errPar)
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("corruption error diverged:\n  seq: %v\n  par: %v", errSeq, errPar)
	}
}

// TestParallelConnectDuplicateCreate pins the one defect class random
// blocks cannot produce honestly (output IDs hash the transaction):
// a created outpoint that already exists in the set.
func TestParallelConnectDuplicateCreate(t *testing.T) {
	params := DefaultParams()
	params.VerifyScripts = false
	w := newShardWorld(13)
	b := w.buildBlock(6, 0)
	// Pre-seed the set with one of the block's future outpoints.
	tx := b.Txs[len(b.Txs)-1]
	clash := OutPoint{TxID: tx.ID(), Index: 0}
	if !w.utxo.createLocked(clash, UTXOEntry{Out: TxOut{Value: 1}, Height: 1}) {
		t.Fatal("clash outpoint already present")
	}
	seq, par := w.utxo.Clone(), w.utxo.Clone()
	_, errSeq := connectBlockUndo(seq, b, params, NewVerifier(0, nil))
	_, errPar := connectBlockParallel(par, b, params, NewVerifier(8, nil))
	if errSeq == nil || errPar == nil {
		t.Fatalf("duplicate create accepted: sequential err %v, parallel err %v", errSeq, errPar)
	}
	if errSeq.Error() != errPar.Error() {
		t.Fatalf("error text diverged:\n  seq: %v\n  par: %v", errSeq, errPar)
	}
	if !seq.Equal(w.utxo) || !par.Equal(w.utxo) {
		t.Fatalf("failed connect mutated the set")
	}
}
