// Package bcwan is the public API of the BcWAN reproduction: a federated,
// blockchain-backed low-power WAN in which IoT end-devices deliver data to
// their home network through foreign gateways, and gateways are paid per
// delivery through an on-chain fair exchange (Bezahaf, Cathelain, Ducrocq:
// "BcWAN: A Federated Low-Power WAN for the Internet of Things",
// Middleware '18 Industry).
//
// The package wires the substrates in internal/ (blockchain with custom
// script operators, LoRa simulator, P2P overlay, wallets) into three
// actor roles — Gateway, Recipient, Sensor — sharing one Network. The
// typical flow mirrors the paper's Fig. 3:
//
//	net, _ := bcwan.NewNetwork(bcwan.DefaultNetworkConfig())
//	gw, _ := net.NewGateway(bcwan.DefaultGatewayConfig())
//	rcpt, _ := net.NewRecipient("10.0.0.7:7000", bcwan.DefaultRecipientConfig())
//	sensor, _ := rcpt.ProvisionSensor()
//	msg, _ := net.RunExchange(sensor, gw, rcpt, []byte("21.5C"))
package bcwan

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/device"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/recipient"
	"bcwan/internal/registry"
	"bcwan/internal/wallet"
)

// NetworkConfig tunes the shared blockchain substrate.
type NetworkConfig struct {
	// BlockInterval is the target mining time (Multichain tunable).
	BlockInterval time.Duration
	// Treasury is the amount minted at genesis to fund actors.
	Treasury uint64
	// Random is the entropy source (defaults to crypto/rand).
	Random io.Reader
}

// DefaultNetworkConfig mirrors the proof-of-concept chain settings.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		BlockInterval: 15 * time.Second,
		Treasury:      100_000_000,
	}
}

// GatewayConfig re-exports the gateway policy knobs.
type GatewayConfig = gateway.Config

// DefaultGatewayConfig is the PoC policy: zero-confirmation claims.
func DefaultGatewayConfig() GatewayConfig { return gateway.DefaultConfig() }

// RecipientConfig re-exports the recipient policy knobs.
type RecipientConfig = recipient.Config

// DefaultRecipientConfig accepts the default price.
func DefaultRecipientConfig() RecipientConfig { return recipient.DefaultConfig() }

// Message is a decrypted sensor reading delivered to its recipient.
type Message = recipient.Message

// Network is an in-process BcWAN federation: one blockchain (chain +
// mempool + authorized miner), the on-chain IP directory, and a treasury
// that funds new actors.
type Network struct {
	cfg      NetworkConfig
	chain    *chain.Chain
	pool     *chain.Mempool
	miner    *chain.Miner
	ledger   *fairex.Node
	dir      *registry.Directory
	treasury *wallet.Wallet
	random   io.Reader

	mu  sync.Mutex
	now time.Time
}

// Network errors.
var (
	// ErrExchangeIncomplete reports a RunExchange that could not finish.
	ErrExchangeIncomplete = errors.New("bcwan: exchange incomplete")
)

// NewNetwork creates a federation with a funded treasury and a single
// authorized miner (the paper's master-node role).
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Random == nil {
		cfg.Random = rand.Reader
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = 15 * time.Second
	}
	if cfg.Treasury == 0 {
		cfg.Treasury = 100_000_000
	}
	treasury, err := wallet.New(cfg.Random)
	if err != nil {
		return nil, fmt.Errorf("bcwan: treasury: %w", err)
	}
	minerWallet, err := wallet.New(cfg.Random)
	if err != nil {
		return nil, fmt.Errorf("bcwan: miner: %w", err)
	}
	params := chain.DefaultParams()
	params.BlockInterval = cfg.BlockInterval
	genesis := chain.GenesisBlock(map[[20]byte]uint64{treasury.PubKeyHash(): cfg.Treasury})
	c, err := chain.New(params, genesis)
	if err != nil {
		return nil, fmt.Errorf("bcwan: genesis: %w", err)
	}
	c.AuthorizeMiner(minerWallet.PublicBytes())
	pool := chain.NewMempool()
	pool.UseVerifier(c.Verifier())
	n := &Network{
		cfg:      cfg,
		chain:    c,
		pool:     pool,
		miner:    chain.NewMiner(minerWallet.Key(), c, pool, cfg.Random),
		treasury: treasury,
		random:   cfg.Random,
		now:      time.Now(),
	}
	n.ledger = &fairex.Node{Chain: c, Pool: pool}
	n.dir = registry.NewDirectory()
	n.dir.Attach(c)
	return n, nil
}

// Chain exposes the underlying blockchain (read-mostly: heights, blocks,
// confirmations).
func (n *Network) Chain() *chain.Chain { return n.chain }

// Ledger exposes the combined chain+mempool view protocol actors use.
func (n *Network) Ledger() *fairex.Node { return n.ledger }

// Directory exposes the on-chain IP directory (§4.3).
func (n *Network) Directory() *registry.Directory { return n.dir }

// MineBlock mints the next block from the mempool, advancing the
// network's logical clock by one block interval.
func (n *Network) MineBlock() (*chain.Block, error) {
	n.mu.Lock()
	n.now = n.now.Add(n.cfg.BlockInterval)
	at := n.now
	n.mu.Unlock()
	b, err := n.miner.Mine(at)
	if err != nil {
		return nil, fmt.Errorf("bcwan: mine: %w", err)
	}
	return b, nil
}

// Fund pays an amount from the treasury to a wallet and confirms it.
func (n *Network) Fund(w *wallet.Wallet, amount uint64) error {
	tx, err := n.treasury.BuildPayment(n.ledger.UTXO(), w.PubKeyHash(), amount, 1)
	if err != nil {
		return fmt.Errorf("bcwan: fund: %w", err)
	}
	if err := n.ledger.Submit(tx); err != nil {
		return fmt.Errorf("bcwan: fund: %w", err)
	}
	if _, err := n.MineBlock(); err != nil {
		return err
	}
	return nil
}

// Gateway is a foreign gateway actor.
type Gateway struct {
	*gateway.Gateway
	net *Network
}

// NewGateway creates a gateway on the network. Gateways need no funds:
// their revenue is the claims they win.
func (n *Network) NewGateway(cfg GatewayConfig) (*Gateway, error) {
	w, err := wallet.New(n.random)
	if err != nil {
		return nil, fmt.Errorf("bcwan: gateway wallet: %w", err)
	}
	return &Gateway{
		Gateway: gateway.New(cfg, w, n.ledger, n.dir, n.random),
		net:     n,
	}, nil
}

// Recipient is a home-network actor that pays for deliveries.
type Recipient struct {
	*recipient.Recipient
	net     *Network
	netAddr string
}

// NewRecipient creates a recipient listening at netAddr, funds it from
// the treasury, and publishes its IP binding on-chain.
func (n *Network) NewRecipient(netAddr string, cfg RecipientConfig) (*Recipient, error) {
	w, err := wallet.New(n.random)
	if err != nil {
		return nil, fmt.Errorf("bcwan: recipient wallet: %w", err)
	}
	if err := n.Fund(w, 1_000_000); err != nil {
		return nil, err
	}
	pub, err := registry.BuildPublish(w, n.ledger.UTXO(), netAddr, 1)
	if err != nil {
		return nil, fmt.Errorf("bcwan: publish binding: %w", err)
	}
	if err := n.ledger.Submit(pub); err != nil {
		return nil, fmt.Errorf("bcwan: publish binding: %w", err)
	}
	if _, err := n.MineBlock(); err != nil {
		return nil, err
	}
	return &Recipient{
		Recipient: recipient.New(cfg, w, n.ledger, n.random),
		net:       n,
		netAddr:   netAddr,
	}, nil
}

// Address returns the recipient's blockchain address @R.
func (r *Recipient) Address() string { return r.Wallet().Address() }

// NetAddr returns the recipient's published network address.
func (r *Recipient) NetAddr() string { return r.netAddr }

// Sensor is a provisioned end-device.
type Sensor struct {
	*device.Device
}

var nextEUI uint64 //nolint:gochecknoglobals // sequential device EUIs

var euiMu sync.Mutex

// ProvisionSensor mints a sensor bound to this recipient: it generates
// the shared AES-256 key K and the node's RSA-512 signing keypair, loads
// them on the device, and registers the counterparts with the recipient
// (§4.4's provisioning phase).
func (r *Recipient) ProvisionSensor() (*Sensor, error) {
	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := io.ReadFull(r.net.random, sharedKey); err != nil {
		return nil, fmt.Errorf("bcwan: shared key: %w", err)
	}
	nodeKey, err := bccrypto.GenerateRSA512(r.net.random)
	if err != nil {
		return nil, fmt.Errorf("bcwan: node key: %w", err)
	}
	euiMu.Lock()
	nextEUI++
	var eui lora.DevEUI
	for i := 0; i < 8; i++ {
		eui[i] = byte(nextEUI >> (8 * (7 - i)))
	}
	euiMu.Unlock()

	dev, err := device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: r.Wallet().PubKeyHash(),
	}, r.net.random)
	if err != nil {
		return nil, err
	}
	r.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})
	return &Sensor{Device: dev}, nil
}

// Actor is one federation participant that may own several gateways.
// Per §4.2 (footnote 3), an actor with several gateways elects one as the
// master gateway — the gateway its own devices address their data to.
type Actor struct {
	Name     string
	net      *Network
	gateways []*Gateway
}

// NewActor creates a named participant.
func (n *Network) NewActor(name string) *Actor {
	return &Actor{Name: name, net: n}
}

// AddGateway deploys one more gateway owned by this actor.
func (a *Actor) AddGateway(cfg GatewayConfig) (*Gateway, error) {
	gw, err := a.net.NewGateway(cfg)
	if err != nil {
		return nil, err
	}
	a.gateways = append(a.gateways, gw)
	return gw, nil
}

// Gateways lists the actor's gateways.
func (a *Actor) Gateways() []*Gateway {
	return append([]*Gateway(nil), a.gateways...)
}

// MasterGateway elects the actor's master gateway deterministically: the
// gateway with the lexicographically smallest public key hash wins, so
// every party in the federation agrees on the election without
// coordination.
func (a *Actor) MasterGateway() (*Gateway, error) {
	if len(a.gateways) == 0 {
		return nil, errors.New("bcwan: actor has no gateways")
	}
	master := a.gateways[0]
	best := master.Wallet().PubKeyHash()
	for _, gw := range a.gateways[1:] {
		h := gw.Wallet().PubKeyHash()
		for i := range h {
			if h[i] != best[i] {
				if h[i] < best[i] {
					master, best = gw, h
				}
				break
			}
		}
	}
	return master, nil
}

// RunExchange executes one full Fig. 3 exchange in-process: key request
// and response, double encryption and signature on the sensor, delivery
// and IP resolution on the gateway, payment by the recipient, claim by
// the gateway (revealing eSk), one block to confirm, and the final double
// decryption. It returns the recipient's decrypted message.
func (n *Network) RunExchange(s *Sensor, g *Gateway, r *Recipient, reading []byte) (*Message, error) {
	keyResp, err := g.HandleKeyRequest(s.KeyRequestFrame())
	if err != nil {
		return nil, fmt.Errorf("%w: key request: %v", ErrExchangeIncomplete, err)
	}
	dataFrame, err := s.DataFrame(reading, keyResp.Payload, keyResp.Counter)
	if err != nil {
		return nil, fmt.Errorf("%w: data frame: %v", ErrExchangeIncomplete, err)
	}
	offerHeight := n.chain.Height()
	delivery, netAddr, err := g.HandleData(dataFrame)
	if err != nil {
		return nil, fmt.Errorf("%w: delivery: %v", ErrExchangeIncomplete, err)
	}
	if netAddr != r.NetAddr() {
		return nil, fmt.Errorf("%w: resolved %q, want %q", ErrExchangeIncomplete, netAddr, r.NetAddr())
	}
	payment, err := r.HandleDelivery(delivery)
	if err != nil {
		return nil, fmt.Errorf("%w: payment: %v", ErrExchangeIncomplete, err)
	}
	claim, err := g.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, payment.ID(), offerHeight)
	if err != nil {
		return nil, fmt.Errorf("%w: claim: %v", ErrExchangeIncomplete, err)
	}
	if _, err := n.MineBlock(); err != nil {
		return nil, err
	}
	msg, err := r.SettleClaimTx(payment.ID(), claim)
	if err != nil {
		return nil, fmt.Errorf("%w: settle: %v", ErrExchangeIncomplete, err)
	}
	return msg, nil
}
