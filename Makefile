GO ?= go

.PHONY: build test vet race bench blockconnect chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race-detector pass; the concurrent validation and RPC tests are
# the interesting part.
race:
	$(GO) test -race ./...

# One iteration of every figure/table bench, including BenchmarkBlockConnect.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate results/blockconnect.txt (VerifyWorkers x sig-cache sweep).
blockconnect:
	$(GO) run ./cmd/bcwan-bench -only blockconnect

# Fault-injection scenario table under the race detector. Every run
# logs each scenario's RNG seed; replay a failure with
#   make chaos CHAOS_SEED=<seed>
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v -run TestFaultScenarios ./internal/chaos

ci: vet race
