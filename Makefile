GO ?= go

.PHONY: build test vet race bench blockconnect reorg relay-bench sync-bench channel-bench city-bench bench-gate bench-scaling lint fuzz chaos chaos-byzantine ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race-detector pass; the concurrent validation and RPC tests are
# the interesting part.
race:
	$(GO) test -race ./...

# One iteration of every figure/table bench, including BenchmarkBlockConnect.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate results/BENCH_blockconnect.json (VerifyWorkers x sig-cache
# sweep). Commit the result to move the CI regression baseline.
blockconnect:
	$(GO) run ./cmd/bcwan-bench -only blockconnect

# Regenerate results/BENCH_reorg.json (depth-2 reorg cost vs chain
# length, the undo-journal ablation).
reorg:
	$(GO) run ./cmd/bcwan-bench -only reorg

# Regenerate results/BENCH_relay.json (16-node mesh wire bytes and
# propagation time: flood vs inventory/compact relay).
relay-bench:
	$(GO) run ./cmd/bcwan-bench -only relay

# Regenerate results/BENCH_sync.json (height-100k gateway cold start:
# genesis replay vs headers + snapshot bootstrap). Takes minutes.
sync-bench:
	$(GO) run ./cmd/bcwan-bench -only sync

# Regenerate results/BENCH_channel.json (delivery settlement:
# per-message on-chain payments vs one batched payment channel).
channel-bench:
	$(GO) run ./cmd/bcwan-bench -only channel

# Regenerate results/BENCH_city.json (the 10k-device metropolitan
# scaling curve: latency, delivery success and settlement chain load
# per tier). Takes seconds.
city-bench:
	$(GO) run ./cmd/bcwan-bench -only city

# What the CI bench-regression job runs: re-measure into a scratch
# directory and gate against the committed baselines.
bench-gate:
	$(GO) run ./cmd/bcwan-bench -only blockconnect -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-bench -only reorg -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-bench -only relay -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-bench -only sync -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-bench -only channel -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-bench -only city -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-benchgate -kind blockconnect \
		-baseline results/BENCH_blockconnect.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_blockconnect.json
	$(GO) run ./cmd/bcwan-benchgate -kind reorg \
		-baseline results/BENCH_reorg.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_reorg.json
	$(GO) run ./cmd/bcwan-benchgate -kind relay \
		-baseline results/BENCH_relay.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_relay.json
	$(GO) run ./cmd/bcwan-benchgate -kind sync \
		-baseline results/BENCH_sync.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_sync.json
	$(GO) run ./cmd/bcwan-benchgate -kind channel \
		-baseline results/BENCH_channel.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_channel.json
	$(GO) run ./cmd/bcwan-benchgate -kind city \
		-baseline results/BENCH_city.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_city.json

# What the CI connect-scaling step runs: measure block connect pinned
# to one core and again on all cores, then require the multicore run to
# beat the pinned one by the committed floor. Meaningful only on a
# multicore machine.
bench-scaling:
	GOMAXPROCS=1 $(GO) run ./cmd/bcwan-bench -only blockconnect -results /tmp/bcwan-bench-serial
	$(GO) run ./cmd/bcwan-bench -only blockconnect -results /tmp/bcwan-bench-candidate
	$(GO) run ./cmd/bcwan-benchgate -kind connect-scaling \
		-baseline /tmp/bcwan-bench-serial/BENCH_blockconnect.json \
		-candidate /tmp/bcwan-bench-candidate/BENCH_blockconnect.json

# Static analysis. CI installs the tools; locally:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest
lint:
	staticcheck ./...
	govulncheck ./...

# Coverage-guided smoke of every hostile-input surface: the script
# verifier (consensus-critical) plus the decoders fed by
# unauthenticated peers — directory bindings, channel messages, sync
# messages.
fuzz:
	$(GO) test -fuzz=FuzzVerify -fuzztime=30s -run '^$$' ./internal/script/
	$(GO) test -fuzz=FuzzDecodeBinding -fuzztime=15s -run '^$$' ./internal/registry/
	$(GO) test -fuzz=FuzzChannelMsgDecode -fuzztime=15s -run '^$$' ./internal/p2p/
	$(GO) test -fuzz=FuzzSyncMsgDecode -fuzztime=15s -run '^$$' ./internal/p2p/

# Fault-injection scenario table under the race detector. Every run
# logs each scenario's RNG seed; replay a failure with
#   make chaos CHAOS_SEED=<seed>
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v -run 'TestFaultScenarios|TestChannelFaultScenarios|TestStoreCrashScenarios' ./internal/chaos

# Byzantine adversary campaign under the race detector: adversarial
# gateways (key withholding, replays, eclipse, private mining, forged
# bindings) against the reputation-weighted admission defense. Replay a
# failure with
#   make chaos-byzantine CHAOS_SEED=<seed>
chaos-byzantine:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v -run 'TestByzantineScenarios' ./internal/chaos

ci: vet race
