// bcwan-keygen generates the key material BcWAN deployments need:
//
//	bcwan-keygen -type miner      an authorized miner identity
//	bcwan-keygen -type wallet     a blockchain wallet (gateway/recipient)
//	bcwan-keygen -type sensor -recipient <@R address>
//	                              a sensor provisioning bundle: the shared
//	                              AES-256 key K, the node's RSA-512
//	                              signing keypair, and a device EUI
//	                              (§4.4's provisioning phase)
//
// Add -n <count> to any type to generate a batch (one JSON document
// per identity), e.g. provisioning a 30-sensor site in one call.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bcwan/internal/bccrypto"
	"bcwan/internal/wallet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcwan-keygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcwan-keygen", flag.ContinueOnError)
	keyType := fs.String("type", "wallet", "what to generate: miner | wallet | sensor")
	recipientAddr := fs.String("recipient", "", "recipient @R address (required for -type sensor)")
	eui := fs.String("eui", "", "sensor device EUI as 16 hex chars (random if empty)")
	count := fs.Int("n", 1, "generate this many identities (one JSON document each)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count < 1 {
		return fmt.Errorf("-n must be at least 1")
	}
	if *count > 1 && *eui != "" {
		return fmt.Errorf("-eui fixes one device EUI; it cannot combine with -n %d", *count)
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")

	for i := 0; i < *count; i++ {
		if err := generate(out, *keyType, *recipientAddr, *eui); err != nil {
			return err
		}
	}
	return nil
}

// generate emits one identity of the requested type.
func generate(out *json.Encoder, keyType, recipientAddr, eui string) error {
	switch keyType {
	case "miner":
		key, err := bccrypto.GenerateECKey(rand.Reader)
		if err != nil {
			return err
		}
		return out.Encode(map[string]string{
			"type":       "miner",
			"privateKey": hex.EncodeToString(key.MarshalECPrivateKey()),
			"publicKey":  hex.EncodeToString(key.PublicBytes()),
		})

	case "wallet":
		w, err := wallet.New(rand.Reader)
		if err != nil {
			return err
		}
		hash := w.PubKeyHash()
		return out.Encode(map[string]string{
			"type":       "wallet",
			"privateKey": hex.EncodeToString(w.Key().MarshalECPrivateKey()),
			"publicKey":  hex.EncodeToString(w.PublicBytes()),
			"pubKeyHash": hex.EncodeToString(hash[:]),
			"address":    w.Address(),
		})

	case "sensor":
		if recipientAddr == "" {
			return fmt.Errorf("-type sensor requires -recipient <@R address>")
		}
		rHash, err := bccrypto.PubKeyHashFromAddress(recipientAddr)
		if err != nil {
			return fmt.Errorf("recipient address: %w", err)
		}
		sharedKey := make([]byte, bccrypto.AESKeySize)
		if _, err := rand.Read(sharedKey); err != nil {
			return err
		}
		nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
		if err != nil {
			return err
		}
		devEUI := make([]byte, 8)
		if eui != "" {
			decoded, err := hex.DecodeString(eui)
			if err != nil || len(decoded) != 8 {
				return fmt.Errorf("-eui must be 16 hex chars")
			}
			copy(devEUI, decoded)
		} else if _, err := rand.Read(devEUI); err != nil {
			return err
		}
		return out.Encode(map[string]string{
			"type": "sensor",
			// Loaded on the node:
			"devEUI":        hex.EncodeToString(devEUI),
			"sharedKeyK":    hex.EncodeToString(sharedKey),
			"signingKeySk":  hex.EncodeToString(bccrypto.MarshalRSA512PrivateKey(nodeKey)),
			"recipientHash": hex.EncodeToString(rHash[:]),
			// Registered on the recipient:
			"nodePublicKeyPk": hex.EncodeToString(bccrypto.MarshalRSA512PublicKey(nodeKey.Public())),
		})

	default:
		return fmt.Errorf("unknown -type %q (miner | wallet | sensor)", keyType)
	}
}
