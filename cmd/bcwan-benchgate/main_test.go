package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBlockConnect = `{
  "blocks": 12, "txs_per_block": 24,
  "results": [
    {"workers": 0, "warm": false, "ns_per_block": 4000000, "sigcache_hit_rate": 0},
    {"workers": 4, "warm": true,  "ns_per_block": 200000,  "sigcache_hit_rate": 0.5}
  ]
}`

func TestGateBlockConnectPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseBlockConnect)
	// 20% slower and hit rate at 80% of baseline: inside both thresholds.
	cand := writeFile(t, dir, "cand.json", `{
	  "blocks": 12, "txs_per_block": 24,
	  "results": [
	    {"workers": 0, "warm": false, "ns_per_block": 4800000, "sigcache_hit_rate": 0},
	    {"workers": 4, "warm": true,  "ns_per_block": 210000,  "sigcache_hit_rate": 0.4}
	  ]
	}`)
	failures, err := gateBlockConnect(base, cand, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateBlockConnectFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseBlockConnect)
	// Sequential row 50% slower, warm row's cache effectively disabled.
	cand := writeFile(t, dir, "cand.json", `{
	  "blocks": 12, "txs_per_block": 24,
	  "results": [
	    {"workers": 0, "warm": false, "ns_per_block": 6000000, "sigcache_hit_rate": 0},
	    {"workers": 4, "warm": true,  "ns_per_block": 200000,  "sigcache_hit_rate": 0.1}
	  ]
	}`)
	failures, err := gateBlockConnect(base, cand, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want ns/op and hit-rate regressions", failures)
	}
	if !strings.Contains(failures[0], "ns/block") || !strings.Contains(failures[1], "hit rate") {
		t.Fatalf("unexpected failure messages: %v", failures)
	}
}

func TestGateBlockConnectWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseBlockConnect)
	cand := writeFile(t, dir, "cand.json", `{"blocks": 4, "txs_per_block": 8, "results": []}`)
	if _, err := gateBlockConnect(base, cand, 0.25, 0.75); err == nil {
		t.Fatal("want workload-mismatch error")
	}
}

const baseReorg = `{
  "depth": 2, "scaling_ratio": 1.5,
  "results": [
    {"chain_len": 100,  "ns_per_reorg": 300000},
    {"chain_len": 1000, "ns_per_reorg": 450000}
  ]
}`

func TestGateReorgPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseReorg)
	failures, err := gateReorg(base, base, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateReorgFlagsLinearScaling(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseReorg)
	// A replay-from-genesis reorg: 10x the cost at 10x the height.
	cand := writeFile(t, dir, "cand.json", `{
	  "depth": 2, "scaling_ratio": 10,
	  "results": [
	    {"chain_len": 100,  "ns_per_reorg": 300000},
	    {"chain_len": 1000, "ns_per_reorg": 3000000}
	  ]
	}`)
	failures, err := gateReorg(base, cand, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "scales with chain length") {
		t.Fatalf("failures = %v, want one scaling violation", failures)
	}
}

const baseRelay = `{
  "nodes": 16, "degree": 3, "txs_per_block": 32, "blocks": 3,
  "reduction_ratio": 6.0,
  "results": [
    {"mode": "flood", "bytes_per_block": 600000, "propagation_ms": 4.0, "hit_rate": 0, "txn_roundtrips": 0, "full_fallbacks": 0},
    {"mode": "inv",   "bytes_per_block": 100000, "propagation_ms": 5.0, "hit_rate": 0.97, "txn_roundtrips": 1, "full_fallbacks": 0}
  ]
}`

func TestGateRelayPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseRelay)
	// 20% more bytes and a slightly lower hit rate: inside both thresholds.
	cand := writeFile(t, dir, "cand.json", `{
	  "nodes": 16, "degree": 3, "txs_per_block": 32, "blocks": 3,
	  "reduction_ratio": 5.0,
	  "results": [
	    {"mode": "flood", "bytes_per_block": 600000, "hit_rate": 0},
	    {"mode": "inv",   "bytes_per_block": 120000, "hit_rate": 0.90}
	  ]
	}`)
	failures, err := gateRelay(base, cand, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateRelayFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseRelay)
	// Relay degenerated back to flooding: bytes blew past the slack and
	// reconstruction stopped working.
	cand := writeFile(t, dir, "cand.json", `{
	  "nodes": 16, "degree": 3, "txs_per_block": 32, "blocks": 3,
	  "reduction_ratio": 1.0,
	  "results": [
	    {"mode": "flood", "bytes_per_block": 600000, "hit_rate": 0},
	    {"mode": "inv",   "bytes_per_block": 590000, "hit_rate": 0.2}
	  ]
	}`)
	failures, err := gateRelay(base, cand, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want bytes and hit-rate regressions", failures)
	}
	if !strings.Contains(failures[0], "bytes per block") || !strings.Contains(failures[1], "hit rate") {
		t.Fatalf("unexpected failure messages: %v", failures)
	}
}

func TestGateRelayWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseRelay)
	cand := writeFile(t, dir, "cand.json", `{"nodes": 6, "degree": 2, "txs_per_block": 6, "blocks": 2, "results": []}`)
	if _, err := gateRelay(base, cand, 0.25, 0.75); err == nil {
		t.Fatal("want workload-mismatch error")
	}
}

const baseSync = `{
  "height": 100000, "snapshot_interval": 8192, "snapshot_chunk_size": 262144, "txs_per_block": 4,
  "speedup_ratio": 4.0,
  "results": [
    {"mode": "replay",   "cold_start_ms": 60000, "first_delivery_ms": 60100, "bytes_in": 150000000, "prune_base": 0,     "blocks_replayed": 100001},
    {"mode": "snapshot", "cold_start_ms": 15000, "first_delivery_ms": 15025, "bytes_in": 40000000,  "prune_base": 98304, "blocks_replayed": 1696}
  ]
}`

func TestGateSyncPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseSync)
	failures, err := gateSync(base, base, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateSyncFlagsDegradedBootstrap(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseSync)
	// The bootstrap quietly fell back to a full replay: no pruning, every
	// body executed, and the speedup collapsed to parity.
	cand := writeFile(t, dir, "cand.json", `{
	  "height": 100000, "snapshot_interval": 8192, "snapshot_chunk_size": 262144, "txs_per_block": 4,
	  "speedup_ratio": 1.0,
	  "results": [
	    {"mode": "replay",   "first_delivery_ms": 60000, "prune_base": 0, "blocks_replayed": 100001},
	    {"mode": "snapshot", "first_delivery_ms": 59000, "prune_base": 0, "blocks_replayed": 100001}
	  ]
	}`)
	failures, err := gateSync(base, cand, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want speedup, prune and body-count violations", failures)
	}
	if !strings.Contains(failures[0], "speedup") || !strings.Contains(failures[1], "never pruned") ||
		!strings.Contains(failures[2], "saved nothing") {
		t.Fatalf("unexpected failure messages: %v", failures)
	}
}

func TestGateSyncWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseSync)
	cand := writeFile(t, dir, "cand.json", `{"height": 600, "snapshot_interval": 128, "txs_per_block": 2, "results": []}`)
	if _, err := gateSync(base, cand, 1.5); err == nil {
		t.Fatal("want workload-mismatch error")
	}
}

const serialConnect = `{
  "blocks": 12, "txs_per_block": 24, "repeats": 5,
  "results": [
    {"workers": 0, "warm": false, "ns_per_block": 4000000, "sigcache_hit_rate": 0},
    {"workers": 4, "warm": false, "ns_per_block": 3900000, "sigcache_hit_rate": 0},
    {"workers": 4, "warm": true,  "ns_per_block": 200000,  "sigcache_hit_rate": 0.5}
  ]
}`

func TestGateConnectScalingPasses(t *testing.T) {
	dir := t.TempDir()
	serial := writeFile(t, dir, "serial.json", serialConnect)
	// All-cores run connects cold blocks 2.5x faster at workers=4.
	cand := writeFile(t, dir, "cand.json", `{
	  "blocks": 12, "txs_per_block": 24, "repeats": 5,
	  "results": [
	    {"workers": 0, "warm": false, "ns_per_block": 3950000, "sigcache_hit_rate": 0},
	    {"workers": 4, "warm": false, "ns_per_block": 1560000, "sigcache_hit_rate": 0},
	    {"workers": 4, "warm": true,  "ns_per_block": 90000,   "sigcache_hit_rate": 0.5}
	  ]
	}`)
	failures, err := gateConnectScaling(serial, cand, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateConnectScalingFlagsSerializedConnect(t *testing.T) {
	dir := t.TempDir()
	serial := writeFile(t, dir, "serial.json", serialConnect)
	// Multicore run no faster than the pinned run: parallelism broke.
	cand := writeFile(t, dir, "cand.json", `{
	  "blocks": 12, "txs_per_block": 24, "repeats": 5,
	  "results": [
	    {"workers": 0, "warm": false, "ns_per_block": 4000000, "sigcache_hit_rate": 0},
	    {"workers": 4, "warm": false, "ns_per_block": 3850000, "sigcache_hit_rate": 0}
	  ]
	}`)
	failures, err := gateConnectScaling(serial, cand, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "speedup") {
		t.Fatalf("failures = %v, want one speedup violation", failures)
	}
}

func TestGateConnectScalingRejectsSerialOnlyCandidate(t *testing.T) {
	dir := t.TempDir()
	serial := writeFile(t, dir, "serial.json", serialConnect)
	// Candidate's best cold row is the sequential one — the run never
	// measured a multi-worker connect, so the comparison is meaningless.
	cand := writeFile(t, dir, "cand.json", `{
	  "blocks": 12, "txs_per_block": 24, "repeats": 5,
	  "results": [
	    {"workers": 0, "warm": false, "ns_per_block": 1000000, "sigcache_hit_rate": 0}
	  ]
	}`)
	if _, err := gateConnectScaling(serial, cand, 1.5); err == nil {
		t.Fatal("want multi-worker-row error")
	}
}

func TestGateConnectScalingWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	serial := writeFile(t, dir, "serial.json", serialConnect)
	cand := writeFile(t, dir, "cand.json", `{"blocks": 4, "txs_per_block": 8, "repeats": 1, "results": []}`)
	if _, err := gateConnectScaling(serial, cand, 1.5); err == nil {
		t.Fatal("want workload-mismatch error")
	}
}

const baseCity = `{
  "seed": 7, "sim_duration_ms": 7200000, "mean_uplink_interval_ms": 600000,
  "settle_interval_ms": 300000, "block_interval_ms": 30000, "gateway_spacing_m": 2000,
  "tiers": [
    {"devices": 1000, "gateways": 16, "success_rate": 0.99, "latency_p95_ms": 1100,
     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 50000},
    {"devices": 10000, "gateways": 100, "success_rate": 0.99, "latency_p95_ms": 1150,
     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 25000}
  ]
}`

var defaultCityThresholds = cityThresholds{
	minDevices: 10_000, minGateways: 100, minSuccess: 0.9,
	maxLatencyScaling: 3, minThroughputFrac: 0.15,
}

func TestGateCityPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseCity)
	// Candidate throughputs differ from baseline (different machine) but
	// tier-to-tier retention, success and p95 flatness all hold.
	cand := writeFile(t, dir, "cand.json", `{
	  "seed": 7, "sim_duration_ms": 7200000, "mean_uplink_interval_ms": 600000,
	  "settle_interval_ms": 300000, "block_interval_ms": 30000, "gateway_spacing_m": 2000,
	  "tiers": [
	    {"devices": 1000, "gateways": 16, "success_rate": 0.97, "latency_p95_ms": 1200,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 9000},
	    {"devices": 10000, "gateways": 100, "success_rate": 0.95, "latency_p95_ms": 1500,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 4000}
	  ]
	}`)
	failures, err := gateCity(base, cand, defaultCityThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateCityFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseCity)
	// Success collapsed on the big tier, p95 blew up 10x, throughput
	// retention fell to 4% (the all-pairs signature), settlement idle.
	cand := writeFile(t, dir, "cand.json", `{
	  "seed": 7, "sim_duration_ms": 7200000, "mean_uplink_interval_ms": 600000,
	  "settle_interval_ms": 300000, "block_interval_ms": 30000, "gateway_spacing_m": 2000,
	  "tiers": [
	    {"devices": 1000, "gateways": 16, "success_rate": 0.99, "latency_p95_ms": 1100,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 50000},
	    {"devices": 10000, "gateways": 100, "success_rate": 0.6, "latency_p95_ms": 11000,
	     "settle_txs": 0, "blocks": 0, "frames_per_wall_sec": 2000}
	  ]
	}`)
	failures, err := gateCity(base, cand, defaultCityThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 4 {
		t.Fatalf("want 4 failures (success, settlement, p95, throughput), got %d: %v", len(failures), failures)
	}
}

func TestGateCityFlagsSubScaleCampaign(t *testing.T) {
	dir := t.TempDir()
	small := `{
	  "seed": 7, "sim_duration_ms": 7200000, "mean_uplink_interval_ms": 600000,
	  "settle_interval_ms": 300000, "block_interval_ms": 30000, "gateway_spacing_m": 2000,
	  "tiers": [
	    {"devices": 100, "gateways": 4, "success_rate": 0.99, "latency_p95_ms": 1100,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 50000},
	    {"devices": 500, "gateways": 9, "success_rate": 0.99, "latency_p95_ms": 1150,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 40000}
	  ]
	}`
	base := writeFile(t, dir, "base.json", small)
	cand := writeFile(t, dir, "cand.json", small)
	failures, err := gateCity(base, cand, defaultCityThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "city floor") {
		t.Fatalf("want the city-floor failure, got %v", failures)
	}
}

func TestGateCityWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", baseCity)
	cand := writeFile(t, dir, "cand.json", `{
	  "seed": 7, "sim_duration_ms": 3600000, "mean_uplink_interval_ms": 600000,
	  "settle_interval_ms": 300000, "block_interval_ms": 30000, "gateway_spacing_m": 2000,
	  "tiers": [
	    {"devices": 1000, "gateways": 16, "success_rate": 0.99, "latency_p95_ms": 1100,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 50000},
	    {"devices": 10000, "gateways": 100, "success_rate": 0.99, "latency_p95_ms": 1150,
	     "settle_txs": 25, "blocks": 25, "frames_per_wall_sec": 25000}
	  ]
	}`)
	if _, err := gateCity(base, cand, defaultCityThresholds); err == nil ||
		!strings.Contains(err.Error(), "workload mismatch") {
		t.Fatalf("want workload mismatch, got %v", err)
	}
}

func TestGateAgainstCommittedBaselines(t *testing.T) {
	// The committed baselines must pass against themselves, or the CI
	// job would fail on an untouched tree.
	root := "../.."
	bc := filepath.Join(root, "results", "BENCH_blockconnect.json")
	if failures, err := gateBlockConnect(bc, bc, 0.25, 0.75); err != nil || len(failures) != 0 {
		t.Fatalf("blockconnect self-gate: err=%v failures=%v", err, failures)
	}
	ro := filepath.Join(root, "results", "BENCH_reorg.json")
	if failures, err := gateReorg(ro, ro, 5); err != nil || len(failures) != 0 {
		t.Fatalf("reorg self-gate: err=%v failures=%v", err, failures)
	}
	re := filepath.Join(root, "results", "BENCH_relay.json")
	if failures, err := gateRelay(re, re, 0.25, 0.75); err != nil || len(failures) != 0 {
		t.Fatalf("relay self-gate: err=%v failures=%v", err, failures)
	}
	sy := filepath.Join(root, "results", "BENCH_sync.json")
	if failures, err := gateSync(sy, sy, 1.5); err != nil || len(failures) != 0 {
		t.Fatalf("sync self-gate: err=%v failures=%v", err, failures)
	}
	ci := filepath.Join(root, "results", "BENCH_city.json")
	if failures, err := gateCity(ci, ci, defaultCityThresholds); err != nil || len(failures) != 0 {
		t.Fatalf("city self-gate: err=%v failures=%v", err, failures)
	}
}
