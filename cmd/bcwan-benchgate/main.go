// bcwan-benchgate compares a freshly measured benchmark JSON against
// the committed baseline and exits non-zero on a regression. CI runs it
// after bcwan-bench so that chain-level performance properties — block
// connect throughput, signature-cache effectiveness, and the O(depth)
// reorg-cost bound of the undo-journal design — gate every merge.
//
//	bcwan-benchgate -kind blockconnect \
//	    -baseline results/BENCH_blockconnect.json -candidate /tmp/BENCH_blockconnect.json
//	bcwan-benchgate -kind reorg \
//	    -baseline results/BENCH_reorg.json -candidate /tmp/BENCH_reorg.json
//	bcwan-benchgate -kind relay \
//	    -baseline results/BENCH_relay.json -candidate /tmp/BENCH_relay.json
//	bcwan-benchgate -kind sync \
//	    -baseline results/BENCH_sync.json -candidate /tmp/BENCH_sync.json
//	bcwan-benchgate -kind channel \
//	    -baseline results/BENCH_channel.json -candidate /tmp/BENCH_channel.json
//	bcwan-benchgate -kind city \
//	    -baseline results/BENCH_city.json -candidate /tmp/BENCH_city.json
//	bcwan-benchgate -kind connect-scaling \
//	    -baseline /tmp/serial/BENCH_blockconnect.json -candidate /tmp/parallel/BENCH_blockconnect.json
//
// connect-scaling is different from the others: both inputs are fresh
// blockconnect documents from the SAME machine in the SAME CI job — the
// baseline measured under GOMAXPROCS=1, the candidate on all cores — and
// the gate asserts the multicore run connects blocks at least
// -min-parallel-speedup times faster. A sharded-UTXO or verify-pool
// regression that serializes block connect pushes the ratio to 1x.
//
// The thresholds are deliberately loose (25% ns/op slack, hit rate no
// lower than 75% of baseline, reorg scaling ratio at most 5x, relay
// bytes-per-block slack 25% with a 0.75 compact hit-rate floor, sync
// cold-start speedup at least 1.5x, channel settlement speedup at
// least 5x, city success floor 0.9 with a 0.15 throughput-retention
// floor) so shared CI runners do not flake; a genuine algorithmic
// regression — say a reorg going back to replay-from-genesis, the inv
// relay degenerating back to flooding, the snapshot bootstrap silently
// falling back to a body-by-body replay, or channel deliveries quietly
// settling on-chain per message — overshoots them by orders of
// magnitude. See README.md for what to do when this gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcwan-benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("bcwan-benchgate", flag.ContinueOnError)
	kind := fs.String("kind", "", "benchmark document kind: blockconnect|reorg|relay|sync|channel|city|connect-scaling")
	baselinePath := fs.String("baseline", "", "committed baseline JSON (required)")
	candidatePath := fs.String("candidate", "", "freshly measured JSON (required)")
	maxRegression := fs.Float64("max-regression", 0.25, "allowed ns/op increase over baseline (fraction)")
	minHitRateFrac := fs.Float64("min-hitrate-frac", 0.75, "blockconnect: candidate hit rate as a fraction of baseline; relay: absolute hit-rate floor")
	maxScaling := fs.Float64("max-scaling", 5, "reorg: max per-reorg cost ratio of longest vs shortest chain")
	minSyncSpeedup := fs.Float64("min-sync-speedup", 1.5, "sync: min snapshot-bootstrap speedup over genesis replay (first-delivery ratio)")
	minChannelSpeedup := fs.Float64("min-channel-speedup", 5, "channel: min deliveries/sec speedup of channel settlement over per-message on-chain settlement")
	minParallelSpeedup := fs.Float64("min-parallel-speedup", 1.5, "connect-scaling: min ns/block speedup of the all-cores run over the GOMAXPROCS=1 run")
	minCityDevices := fs.Int("min-city-devices", 10_000, "city: device floor for the largest tier")
	minCityGateways := fs.Int("min-city-gateways", 100, "city: gateway floor for the largest tier")
	minCitySuccess := fs.Float64("min-city-success", 0.9, "city: per-tier delivery success-rate floor")
	maxCityLatencyScaling := fs.Float64("max-city-latency-scaling", 3, "city: max p95 latency ratio of largest vs smallest tier")
	minCityThroughputFrac := fs.Float64("min-city-throughput-frac", 0.15, "city: min frames-per-wall-second of the largest tier as a fraction of the smallest's")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *candidatePath == "" {
		return fmt.Errorf("-baseline and -candidate are required")
	}

	var failures []string
	var err error
	switch *kind {
	case "blockconnect":
		failures, err = gateBlockConnect(*baselinePath, *candidatePath, *maxRegression, *minHitRateFrac)
	case "reorg":
		failures, err = gateReorg(*baselinePath, *candidatePath, *maxScaling)
	case "relay":
		failures, err = gateRelay(*baselinePath, *candidatePath, *maxRegression, *minHitRateFrac)
	case "sync":
		failures, err = gateSync(*baselinePath, *candidatePath, *minSyncSpeedup)
	case "channel":
		failures, err = gateChannel(*baselinePath, *candidatePath, *minChannelSpeedup)
	case "city":
		failures, err = gateCity(*baselinePath, *candidatePath, cityThresholds{
			minDevices:        *minCityDevices,
			minGateways:       *minCityGateways,
			minSuccess:        *minCitySuccess,
			maxLatencyScaling: *maxCityLatencyScaling,
			minThroughputFrac: *minCityThroughputFrac,
		})
	case "connect-scaling":
		failures, err = gateConnectScaling(*baselinePath, *candidatePath, *minParallelSpeedup)
	default:
		return fmt.Errorf("-kind must be blockconnect, reorg, relay, sync, channel, city, or connect-scaling, got %q", *kind)
	}
	if err != nil {
		return err
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(out, "FAIL:", f)
		}
		return fmt.Errorf("%d regression(s) against %s", len(failures), *baselinePath)
	}
	fmt.Fprintf(out, "PASS: %s within thresholds of %s\n", *candidatePath, *baselinePath)
	return nil
}

// blockConnectDoc mirrors results/BENCH_blockconnect.json.
type blockConnectDoc struct {
	Blocks      int `json:"blocks"`
	TxsPerBlock int `json:"txs_per_block"`
	Repeats     int `json:"repeats"`
	Results     []struct {
		Workers         int     `json:"workers"`
		Warm            bool    `json:"warm"`
		NsPerBlock      int64   `json:"ns_per_block"`
		SigCacheHitRate float64 `json:"sigcache_hit_rate"`
	} `json:"results"`
}

// relayDoc mirrors results/BENCH_relay.json.
type relayDoc struct {
	Nodes          int     `json:"nodes"`
	Degree         int     `json:"degree"`
	TxsPerBlock    int     `json:"txs_per_block"`
	Blocks         int     `json:"blocks"`
	ReductionRatio float64 `json:"reduction_ratio"`
	Results        []struct {
		Mode          string  `json:"mode"`
		BytesPerBlock int64   `json:"bytes_per_block"`
		HitRate       float64 `json:"hit_rate"`
	} `json:"results"`
}

// syncDoc mirrors results/BENCH_sync.json.
type syncDoc struct {
	Height           int64 `json:"height"`
	SnapshotInterval int64 `json:"snapshot_interval"`
	TxsPerBlock      int   `json:"txs_per_block"`
	Results          []struct {
		Mode            string  `json:"mode"`
		FirstDeliveryMS float64 `json:"first_delivery_ms"`
		PruneBase       int64   `json:"prune_base"`
		BlocksReplayed  int64   `json:"blocks_replayed"`
	} `json:"results"`
}

// channelDoc mirrors results/BENCH_channel.json.
type channelDoc struct {
	Deliveries      int    `json:"deliveries"`
	Capacity        uint64 `json:"capacity"`
	Price           uint64 `json:"price"`
	BlockIntervalMS int    `json:"block_interval_ms"`
	Results         []struct {
		Mode             string  `json:"mode"`
		DeliveriesPerSec float64 `json:"deliveries_per_sec"`
		OnChainTxs       int64   `json:"onchain_txs"`
	} `json:"results"`
}

// cityDoc mirrors results/BENCH_city.json.
type cityDoc struct {
	Seed                 int64   `json:"seed"`
	SimDurationMS        int64   `json:"sim_duration_ms"`
	MeanUplinkIntervalMS int64   `json:"mean_uplink_interval_ms"`
	SettleIntervalMS     int64   `json:"settle_interval_ms"`
	BlockIntervalMS      int64   `json:"block_interval_ms"`
	GatewaySpacingM      float64 `json:"gateway_spacing_m"`
	Tiers                []struct {
		Devices          int     `json:"devices"`
		Gateways         int     `json:"gateways"`
		FramesSent       int64   `json:"frames_sent"`
		FramesDelivered  int64   `json:"frames_delivered"`
		SuccessRate      float64 `json:"success_rate"`
		LatencyP95MS     float64 `json:"latency_p95_ms"`
		SettleTxs        int     `json:"settle_txs"`
		Blocks           int     `json:"blocks"`
		FramesPerWallSec float64 `json:"frames_per_wall_sec"`
	} `json:"tiers"`
}

// reorgDoc mirrors results/BENCH_reorg.json.
type reorgDoc struct {
	Depth        int     `json:"depth"`
	ScalingRatio float64 `json:"scaling_ratio"`
	Results      []struct {
		ChainLen   int   `json:"chain_len"`
		NsPerReorg int64 `json:"ns_per_reorg"`
	} `json:"results"`
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// gateBlockConnect matches candidate rows to baseline rows by
// (workers, warm) and flags any ns/op regression beyond maxRegression
// or any hit rate falling below minHitRateFrac of the baseline's.
// Rows only one side has are ignored: sweeping a new worker count must
// not fail the gate.
func gateBlockConnect(baselinePath, candidatePath string, maxRegression, minHitRateFrac float64) ([]string, error) {
	var base, cand blockConnectDoc
	if err := readJSON(baselinePath, &base); err != nil {
		return nil, err
	}
	if err := readJSON(candidatePath, &cand); err != nil {
		return nil, err
	}
	if base.Blocks != cand.Blocks || base.TxsPerBlock != cand.TxsPerBlock || base.Repeats != cand.Repeats {
		return nil, fmt.Errorf("workload mismatch: baseline %dx%d best-of-%d vs candidate %dx%d best-of-%d — regenerate the baseline",
			base.Blocks, base.TxsPerBlock, base.Repeats, cand.Blocks, cand.TxsPerBlock, cand.Repeats)
	}

	type key struct {
		workers int
		warm    bool
	}
	baseRows := make(map[key]int)
	for i, r := range base.Results {
		baseRows[key{r.Workers, r.Warm}] = i
	}
	var failures []string
	matched := 0
	for _, c := range cand.Results {
		i, ok := baseRows[key{c.Workers, c.Warm}]
		if !ok {
			continue
		}
		matched++
		b := base.Results[i]
		if b.NsPerBlock > 0 && float64(c.NsPerBlock) > float64(b.NsPerBlock)*(1+maxRegression) {
			failures = append(failures, fmt.Sprintf(
				"block connect workers=%d warm=%v: %d ns/block vs baseline %d (+%.0f%%, allowed +%.0f%%)",
				c.Workers, c.Warm, c.NsPerBlock, b.NsPerBlock,
				100*(float64(c.NsPerBlock)/float64(b.NsPerBlock)-1), 100*maxRegression))
		}
		if b.SigCacheHitRate > 0 && c.SigCacheHitRate < b.SigCacheHitRate*minHitRateFrac {
			failures = append(failures, fmt.Sprintf(
				"sig cache workers=%d warm=%v: hit rate %.2f vs baseline %.2f (floor %.2f)",
				c.Workers, c.Warm, c.SigCacheHitRate, b.SigCacheHitRate, b.SigCacheHitRate*minHitRateFrac))
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no candidate row matches any baseline row — wrong file?")
	}
	return failures, nil
}

// gateReorg asserts the undo-journal property inside the candidate file
// itself: the per-reorg cost on the longest chain must stay within
// maxScaling times the cost on the shortest. This is a same-machine
// comparison, so it holds on any runner speed — a replay-from-genesis
// reorg would push the ratio toward chainLenMax/chainLenMin. The
// baseline is only checked for workload-shape agreement (absolute
// nanoseconds are not compared across machines).
func gateReorg(baselinePath, candidatePath string, maxScaling float64) ([]string, error) {
	var base, cand reorgDoc
	if err := readJSON(baselinePath, &base); err != nil {
		return nil, err
	}
	if err := readJSON(candidatePath, &cand); err != nil {
		return nil, err
	}
	if base.Depth != cand.Depth || len(base.Results) != len(cand.Results) {
		return nil, fmt.Errorf("workload mismatch: baseline depth %d/%d lengths vs candidate depth %d/%d lengths — regenerate the baseline",
			base.Depth, len(base.Results), cand.Depth, len(cand.Results))
	}
	if len(cand.Results) < 2 {
		return nil, fmt.Errorf("reorg document needs at least two chain lengths, got %d", len(cand.Results))
	}
	first, last := cand.Results[0], cand.Results[len(cand.Results)-1]
	if first.NsPerReorg <= 0 {
		return nil, fmt.Errorf("reorg baseline row has non-positive ns_per_reorg")
	}
	ratio := float64(last.NsPerReorg) / float64(first.NsPerReorg)
	if ratio > maxScaling {
		return []string{fmt.Sprintf(
			"depth-%d reorg cost scales with chain length: %d ns at height %d vs %d ns at height %d (%.2fx > %.1fx) — did a reorg path fall back to replay-from-genesis?",
			cand.Depth, last.NsPerReorg, last.ChainLen, first.NsPerReorg, first.ChainLen, ratio, maxScaling)}, nil
	}
	return nil, nil
}

// gateSync asserts the snapshot-bootstrap property inside the candidate
// file itself: joining via snapshot must reach first delivery at least
// minSpeedup times faster than the genesis replay of the same history,
// and the snapshot join must actually have pruned (prune_base > 0) with
// fewer bodies executed than the replay. Both joins run back to back on
// the same machine, so the ratio holds on any runner speed — a
// bootstrap that quietly degrades to replaying every body pushes it to
// 1x. The baseline is only checked for workload-shape agreement
// (absolute milliseconds are not compared across machines).
func gateSync(baselinePath, candidatePath string, minSpeedup float64) ([]string, error) {
	var base, cand syncDoc
	if err := readJSON(baselinePath, &base); err != nil {
		return nil, err
	}
	if err := readJSON(candidatePath, &cand); err != nil {
		return nil, err
	}
	if base.Height != cand.Height || base.SnapshotInterval != cand.SnapshotInterval ||
		base.TxsPerBlock != cand.TxsPerBlock {
		return nil, fmt.Errorf("workload mismatch: baseline height %d/interval %d/%d txs vs candidate height %d/interval %d/%d txs — regenerate the baseline",
			base.Height, base.SnapshotInterval, base.TxsPerBlock,
			cand.Height, cand.SnapshotInterval, cand.TxsPerBlock)
	}

	row := func(doc syncDoc, mode string) (float64, int64, int64, bool) {
		for _, r := range doc.Results {
			if r.Mode == mode {
				return r.FirstDeliveryMS, r.PruneBase, r.BlocksReplayed, true
			}
		}
		return 0, 0, 0, false
	}
	replayMS, _, replayBlocks, ok := row(cand, "replay")
	if !ok {
		return nil, fmt.Errorf("%s: no replay row", candidatePath)
	}
	snapMS, snapBase, snapBlocks, ok := row(cand, "snapshot")
	if !ok {
		return nil, fmt.Errorf("%s: no snapshot row", candidatePath)
	}
	if replayMS <= 0 || snapMS <= 0 {
		return nil, fmt.Errorf("%s: non-positive first-delivery time", candidatePath)
	}

	var failures []string
	if ratio := replayMS / snapMS; ratio < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"snapshot bootstrap speedup %.2fx below floor %.1fx (replay %.0fms vs snapshot %.0fms at height %d) — is the join replaying bodies below the horizon?",
			ratio, minSpeedup, replayMS, snapMS, cand.Height))
	}
	if snapBase <= 0 {
		failures = append(failures, fmt.Sprintf(
			"snapshot join never pruned (prune_base %d) — did the bootstrap fall back to a full sync?", snapBase))
	}
	if snapBlocks >= replayBlocks {
		failures = append(failures, fmt.Sprintf(
			"snapshot join executed %d bodies, replay %d — the horizon saved nothing", snapBlocks, replayBlocks))
	}
	return failures, nil
}

// gateChannel asserts the batched-settlement property inside the
// candidate file itself: routing a delivery stream through a payment
// channel must reach first-inbox-to-last-inbox throughput at least
// minSpeedup times the per-message on-chain path, and the channel run
// must anchor the whole stream with dramatically fewer mined
// transactions (at most deliveries/5, never below the funding + close
// pair). Both runs execute the same workload back to back on the same
// machine, so the ratio holds on any runner speed — a channel layer
// that quietly falls back to settling each delivery on-chain pushes
// the speedup to 1x and the tx count to 2x deliveries. The baseline is
// only checked for workload-shape agreement (absolute deliveries/sec
// are not compared across machines).
func gateChannel(baselinePath, candidatePath string, minSpeedup float64) ([]string, error) {
	var base, cand channelDoc
	if err := readJSON(baselinePath, &base); err != nil {
		return nil, err
	}
	if err := readJSON(candidatePath, &cand); err != nil {
		return nil, err
	}
	if base.Deliveries != cand.Deliveries || base.Capacity != cand.Capacity ||
		base.Price != cand.Price || base.BlockIntervalMS != cand.BlockIntervalMS {
		return nil, fmt.Errorf("workload mismatch: baseline %d deliveries/capacity %d/price %d/%dms blocks vs candidate %d deliveries/capacity %d/price %d/%dms blocks — regenerate the baseline",
			base.Deliveries, base.Capacity, base.Price, base.BlockIntervalMS,
			cand.Deliveries, cand.Capacity, cand.Price, cand.BlockIntervalMS)
	}

	row := func(doc channelDoc, mode string) (float64, int64, bool) {
		for _, r := range doc.Results {
			if r.Mode == mode {
				return r.DeliveriesPerSec, r.OnChainTxs, true
			}
		}
		return 0, 0, false
	}
	onchainDPS, onchainTxs, ok := row(cand, "onchain")
	if !ok {
		return nil, fmt.Errorf("%s: no onchain row", candidatePath)
	}
	channelDPS, channelTxs, ok := row(cand, "channel")
	if !ok {
		return nil, fmt.Errorf("%s: no channel row", candidatePath)
	}
	if onchainDPS <= 0 || channelDPS <= 0 {
		return nil, fmt.Errorf("%s: non-positive deliveries/sec", candidatePath)
	}

	var failures []string
	if ratio := channelDPS / onchainDPS; ratio < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"channel settlement speedup %.2fx below floor %.1fx (on-chain %.1f vs channel %.1f deliveries/sec over %d deliveries) — is every delivery settling on-chain again?",
			ratio, minSpeedup, onchainDPS, channelDPS, cand.Deliveries))
	}
	if channelTxs*5 > onchainTxs {
		failures = append(failures, fmt.Sprintf(
			"channel run mined %d txs vs %d on-chain — batching saved less than 5x, did per-delivery settlement leak onto the chain?",
			channelTxs, onchainTxs))
	}
	if channelTxs < 2 {
		failures = append(failures, fmt.Sprintf(
			"channel run mined only %d txs — the funding and close anchors must both confirm", channelTxs))
	}
	return failures, nil
}

// cityThresholds parameterizes the metropolitan-scale gate.
type cityThresholds struct {
	minDevices        int
	minGateways       int
	minSuccess        float64
	maxLatencyScaling float64
	minThroughputFrac float64
}

// gateCity asserts the metropolitan-scale properties inside the
// candidate file itself: the campaign must actually reach city scale
// (device and gateway floors on the largest tier), deliveries must not
// collapse under load (per-tier success floor), the p95 exchange
// latency must stay flat across the curve (a virtual-time property,
// machine-independent), and the simulator's frames-per-wall-second may
// not collapse between the smallest and largest tier — the all-pairs
// engine the spatial index replaced degrades that ratio quadratically
// in the device count. Wall-clock throughputs are compared only
// tier-to-tier within the candidate, so the gate holds on any runner
// speed. The baseline is checked for workload-shape agreement
// (absolute frames/sec are not compared across machines).
func gateCity(baselinePath, candidatePath string, th cityThresholds) ([]string, error) {
	var base, cand cityDoc
	if err := readJSON(baselinePath, &base); err != nil {
		return nil, err
	}
	if err := readJSON(candidatePath, &cand); err != nil {
		return nil, err
	}
	if base.Seed != cand.Seed || base.SimDurationMS != cand.SimDurationMS ||
		base.MeanUplinkIntervalMS != cand.MeanUplinkIntervalMS ||
		base.SettleIntervalMS != cand.SettleIntervalMS ||
		base.BlockIntervalMS != cand.BlockIntervalMS ||
		base.GatewaySpacingM != cand.GatewaySpacingM ||
		len(base.Tiers) != len(cand.Tiers) {
		return nil, fmt.Errorf("workload mismatch: baseline seed %d/%dms sim/%d tiers vs candidate seed %d/%dms sim/%d tiers — regenerate the baseline",
			base.Seed, base.SimDurationMS, len(base.Tiers),
			cand.Seed, cand.SimDurationMS, len(cand.Tiers))
	}
	for i := range base.Tiers {
		if base.Tiers[i].Devices != cand.Tiers[i].Devices ||
			base.Tiers[i].Gateways != cand.Tiers[i].Gateways {
			return nil, fmt.Errorf("workload mismatch: tier %d is %dx%d in the baseline, %dx%d in the candidate — regenerate the baseline",
				i, base.Tiers[i].Devices, base.Tiers[i].Gateways,
				cand.Tiers[i].Devices, cand.Tiers[i].Gateways)
		}
	}
	if len(cand.Tiers) < 2 {
		return nil, fmt.Errorf("city document needs at least two tiers for a scaling curve, got %d", len(cand.Tiers))
	}

	var failures []string
	first, last := cand.Tiers[0], cand.Tiers[len(cand.Tiers)-1]
	if last.Devices < th.minDevices || last.Gateways < th.minGateways {
		failures = append(failures, fmt.Sprintf(
			"largest tier is %d devices over %d gateways — below the %d-device/%d-gateway city floor",
			last.Devices, last.Gateways, th.minDevices, th.minGateways))
	}
	for i, tier := range cand.Tiers {
		if tier.SuccessRate < th.minSuccess {
			failures = append(failures, fmt.Sprintf(
				"tier %d (%d devices): success rate %.3f below floor %.2f — deliveries collapsed under load",
				i, tier.Devices, tier.SuccessRate, th.minSuccess))
		}
		if tier.SettleTxs < 1 || tier.Blocks < 1 {
			failures = append(failures, fmt.Sprintf(
				"tier %d (%d devices): settlement chain idle (%d txs, %d blocks) — delivery credits never anchored",
				i, tier.Devices, tier.SettleTxs, tier.Blocks))
		}
	}
	if first.LatencyP95MS > 0 {
		if ratio := last.LatencyP95MS / first.LatencyP95MS; ratio > th.maxLatencyScaling {
			failures = append(failures, fmt.Sprintf(
				"p95 latency grows %.2fx from %d to %d devices (%.0fms → %.0fms, allowed %.1fx) — the medium or scheduler is congesting superlinearly",
				ratio, first.Devices, last.Devices, first.LatencyP95MS, last.LatencyP95MS, th.maxLatencyScaling))
		}
	}
	if first.FramesPerWallSec > 0 {
		if frac := last.FramesPerWallSec / first.FramesPerWallSec; frac < th.minThroughputFrac {
			failures = append(failures, fmt.Sprintf(
				"simulator throughput falls to %.2fx of the small tier's at %d devices (%.0f vs %.0f frames/wall-sec, floor %.2fx) — did delivery fall back to an all-pairs scan?",
				frac, last.Devices, last.FramesPerWallSec, first.FramesPerWallSec, th.minThroughputFrac))
		}
	}
	return failures, nil
}

// gateRelay compares the inv-relay row of the candidate against the
// baseline: wire bytes per block may grow at most maxRegression over
// the committed figure, and the compact-block reconstruction hit rate
// must stay at or above minHitRate (an absolute floor, not a fraction
// of baseline — reconstruction on a warm mempool is deterministic, so
// a drop means the short-txid matching broke). Bytes are comparable
// across machines because the workload — message count and sizes on an
// in-memory transport — is fixed by the document's node/tx shape.
func gateRelay(baselinePath, candidatePath string, maxRegression, minHitRate float64) ([]string, error) {
	var base, cand relayDoc
	if err := readJSON(baselinePath, &base); err != nil {
		return nil, err
	}
	if err := readJSON(candidatePath, &cand); err != nil {
		return nil, err
	}
	if base.Nodes != cand.Nodes || base.Degree != cand.Degree ||
		base.TxsPerBlock != cand.TxsPerBlock || base.Blocks != cand.Blocks {
		return nil, fmt.Errorf("workload mismatch: baseline %d nodes/deg %d/%dx%d vs candidate %d nodes/deg %d/%dx%d — regenerate the baseline",
			base.Nodes, base.Degree, base.TxsPerBlock, base.Blocks,
			cand.Nodes, cand.Degree, cand.TxsPerBlock, cand.Blocks)
	}

	row := func(doc relayDoc, mode string) (int64, float64, bool) {
		for _, r := range doc.Results {
			if r.Mode == mode {
				return r.BytesPerBlock, r.HitRate, true
			}
		}
		return 0, 0, false
	}
	baseBytes, _, ok := row(base, "inv")
	if !ok {
		return nil, fmt.Errorf("%s: no inv row", baselinePath)
	}
	candBytes, candHit, ok := row(cand, "inv")
	if !ok {
		return nil, fmt.Errorf("%s: no inv row", candidatePath)
	}

	var failures []string
	if baseBytes > 0 && float64(candBytes) > float64(baseBytes)*(1+maxRegression) {
		failures = append(failures, fmt.Sprintf(
			"relay bytes per block: %d vs baseline %d (+%.0f%%, allowed +%.0f%%)",
			candBytes, baseBytes, 100*(float64(candBytes)/float64(baseBytes)-1), 100*maxRegression))
	}
	if candHit < minHitRate {
		failures = append(failures, fmt.Sprintf(
			"compact reconstruction hit rate %.2f below floor %.2f — short-txid matching or mempool lookup regressed",
			candHit, minHitRate))
	}
	return failures, nil
}

// gateConnectScaling asserts that block connect actually scales with
// cores: the baseline is a blockconnect document measured under
// GOMAXPROCS=1 and the candidate the same workload on all cores, both
// fresh from the same machine, so the ratio of their best cold-cache
// rows is a pure parallel-speedup measurement. Below minSpeedup the
// sharded UTXO apply or the verify worker pool has stopped buying
// anything — the gate that keeps the multicore win from silently
// regressing to the single-map implementation.
func gateConnectScaling(serialPath, parallelPath string, minSpeedup float64) ([]string, error) {
	var serial, parallel blockConnectDoc
	if err := readJSON(serialPath, &serial); err != nil {
		return nil, err
	}
	if err := readJSON(parallelPath, &parallel); err != nil {
		return nil, err
	}
	if serial.Blocks != parallel.Blocks || serial.TxsPerBlock != parallel.TxsPerBlock ||
		serial.Repeats != parallel.Repeats {
		return nil, fmt.Errorf("workload mismatch: serial %dx%d best-of-%d vs parallel %dx%d best-of-%d — both runs must measure the same workload",
			serial.Blocks, serial.TxsPerBlock, serial.Repeats,
			parallel.Blocks, parallel.TxsPerBlock, parallel.Repeats)
	}

	// Best cold-cache row per document: cold connects do the full
	// signature + UTXO work, so this is where the worker pool and the
	// sharded apply show up. min-over-workers makes the gate robust to
	// one noisy row.
	bestCold := func(doc blockConnectDoc, path string) (int64, int, error) {
		best, workers := int64(0), 0
		for _, r := range doc.Results {
			if r.Warm || r.NsPerBlock <= 0 {
				continue
			}
			if best == 0 || r.NsPerBlock < best {
				best, workers = r.NsPerBlock, r.Workers
			}
		}
		if best == 0 {
			return 0, 0, fmt.Errorf("%s: no cold (warm=false) row with positive ns_per_block", path)
		}
		return best, workers, nil
	}
	serialNs, _, err := bestCold(serial, serialPath)
	if err != nil {
		return nil, err
	}
	parallelNs, parallelWorkers, err := bestCold(parallel, parallelPath)
	if err != nil {
		return nil, err
	}
	if parallelWorkers < 2 {
		return nil, fmt.Errorf("%s: best parallel row uses %d workers — the candidate run never exercised a multi-worker connect",
			parallelPath, parallelWorkers)
	}

	speedup := float64(serialNs) / float64(parallelNs)
	if speedup < minSpeedup {
		return []string{fmt.Sprintf(
			"parallel connect speedup %.2fx below floor %.1fx (GOMAXPROCS=1 best %d ns/block vs all-cores best %d at workers=%d) — did block connect serialize?",
			speedup, minSpeedup, serialNs, parallelNs, parallelWorkers)}, nil
	}
	return nil, nil
}
