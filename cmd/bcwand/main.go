// bcwand runs one BcWAN daemon: a blockchain node replicating the chain
// over gossip and serving Multichain-style JSON-RPC, optionally mining
// and optionally acting as a recipient endpoint for gateway deliveries.
//
// Bootstrap a federation on one machine:
//
//	bcwan-keygen -type miner  > miner.json
//	bcwan-keygen -type wallet > treasury.json
//	bcwand -make-genesis -alloc <treasuryHash>=100000000 > genesis.hex
//
//	# master (mines every 15s):
//	bcwand -genesis-file genesis.hex -miner-pub <minerPub> \
//	       -mine -miner-key <minerPriv> -p2p 127.0.0.1:9401 -rpc 127.0.0.1:9501
//
//	# replica:
//	bcwand -genesis-file genesis.hex -miner-pub <minerPub> \
//	       -p2p 127.0.0.1:9402 -rpc 127.0.0.1:9502 -peers 127.0.0.1:9401
//
//	# recipient daemon (delivery listener + auto-settle):
//	bcwand -genesis-file genesis.hex -miner-pub <minerPub> \
//	       -peers 127.0.0.1:9401 -recipient 127.0.0.1:9600
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/daemon"
	"bcwan/internal/recipient"
	"bcwan/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcwand:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcwand", flag.ContinueOnError)
	makeGenesis := fs.Bool("make-genesis", false, "print a genesis block hex for -alloc and exit")
	allocs := fs.String("alloc", "", "genesis allocations: pubKeyHashHex=amount[,..] (with -make-genesis)")
	genesisHex := fs.String("genesis", "", "genesis block hex")
	genesisFile := fs.String("genesis-file", "", "file containing genesis block hex")
	minerPubs := fs.String("miner-pub", "", "authorized miner public keys, hex, comma separated")
	mine := fs.Bool("mine", false, "mine blocks (requires -miner-key)")
	minerKeyHex := fs.String("miner-key", "", "miner EC private key hex (with -mine)")
	interval := fs.Duration("interval", 15*time.Second, "block interval when mining")
	p2pAddr := fs.String("p2p", "127.0.0.1:0", "gossip listen address")
	rpcAddr := fs.String("rpc", "127.0.0.1:0", "JSON-RPC listen address")
	peers := fs.String("peers", "", "gossip peers to dial, comma separated")
	recipientAddr := fs.String("recipient", "", "also run a recipient delivery listener on this address")
	dataDir := fs.String("datadir", "", "directory to persist the chain across restarts")
	metricsLog := fs.Duration("metrics-log", 0, "periodically log a JSON telemetry snapshot at this interval (0 disables)")
	floodRelay := fs.Bool("flood-relay", false, "gossip full tx/block payloads to every peer instead of the inv/compact announcement protocol (debugging escape hatch)")
	prune := fs.Int64("prune", 0, "keep only this many recent block bodies; older heights become header-only stubs at each store compaction (0 = keep everything)")
	snapshotInterval := fs.Int64("snapshot-interval", 0, "height spacing of signed snapshot commitments published when mining (0 = default 1024)")
	legacySync := fs.Bool("legacy-sync", false, "join by replaying every block from genesis instead of headers-first + snapshot bootstrap")
	noChannels := fs.Bool("no-channels", false, "disable off-chain payment channels; every delivery settles with an on-chain payment transaction (escape hatch)")
	groupCommit := fs.Duration("store-group-commit", 0, "store append collection window: appends arriving within it share one fsync (0 = fsync per append unless appends queue up)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, "bcwand ", log.LstdFlags)

	if *makeGenesis {
		return printGenesis(*allocs)
	}

	genesis, err := loadGenesis(*genesisHex, *genesisFile)
	if err != nil {
		return err
	}
	var miners [][]byte
	for _, h := range splitNonEmpty(*minerPubs) {
		pub, err := hex.DecodeString(h)
		if err != nil {
			return fmt.Errorf("miner-pub %q: %w", h, err)
		}
		miners = append(miners, pub)
	}
	params := chain.DefaultParams()
	params.BlockInterval = *interval

	cfg := daemon.NodeConfig{
		Genesis:      genesis,
		Params:       params,
		Miners:       miners,
		ListenP2P:    *p2pAddr,
		ListenRPC:    *rpcAddr,
		Peers:        splitNonEmpty(*peers),
		MineInterval: *interval,
		FloodRelay:   *floodRelay,
		Logger:       logger,

		LegacySyncOnly:   *legacySync,
		PruneDepth:       *prune,
		SnapshotInterval: *snapshotInterval,
		NoChannels:       *noChannels,

		StoreGroupCommitDelay: *groupCommit,
	}
	if *mine {
		if *minerKeyHex == "" {
			return fmt.Errorf("-mine requires -miner-key")
		}
		raw, err := hex.DecodeString(*minerKeyHex)
		if err != nil {
			return fmt.Errorf("miner-key: %w", err)
		}
		key, err := bccrypto.ParseECPrivateKey(raw)
		if err != nil {
			return fmt.Errorf("miner-key: %w", err)
		}
		cfg.MinerKey = key
	}

	node, err := daemon.NewNode(cfg)
	if err != nil {
		return err
	}
	defer node.Close()
	logger.Printf("p2p listening on %s", node.P2PAddr())
	logger.Printf("rpc listening on %s", node.RPCAddr())
	logger.Printf("metrics at http://%s/metrics (Prometheus text) and via the getmetrics RPC", node.RPCAddr())

	if *metricsLog > 0 {
		sl := telemetry.StartSnapshotLogger(node.Telemetry(), logger, *metricsLog)
		defer sl.Stop()
	}

	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o700); err != nil {
			return err
		}
		// Open loads the incremental store and migrates a legacy
		// whole-file chain.dat if one is present.
		loaded, err := node.Open(*dataDir)
		if err != nil {
			return fmt.Errorf("restore chain: %w", err)
		}
		logger.Printf("restored %d blocks from %s (height %d)", loaded, *dataDir, node.Chain().Height())
		defer func() {
			if err := node.Store().Compact(node.Chain()); err != nil {
				logger.Printf("compact chain store: %v", err)
			} else {
				logger.Printf("persisted chain at height %d", node.Chain().Height())
			}
		}()
	}

	if *recipientAddr != "" {
		rd, err := daemon.NewRecipientDaemon(node, recipient.DefaultConfig(), *recipientAddr, nil, logger)
		if err != nil {
			return err
		}
		defer rd.Close()
		rd.OnReceive(func(m *recipient.Message) {
			logger.Printf("decrypted message from %s: %q", m.DevEUI, m.Plaintext)
		})
		ccfg := daemon.DefaultChannelConfig()
		if *dataDir != "" {
			ccfg.StoreDir = *dataDir + "/channels"
		}
		// EnableChannels is a no-op returning nil under -no-channels.
		mgr, err := rd.EnableChannels(ccfg)
		if err != nil {
			return fmt.Errorf("enable channels: %w", err)
		}
		if mgr != nil {
			logger.Printf("payment channels enabled (openchannel/closechannel RPCs); disable with -no-channels")
		}
		logger.Printf("recipient @R %s delivering on %s", rd.Recipient.Wallet().Address(), rd.Addr())
		logger.Printf("fund the recipient wallet and call PublishBinding via your tooling before exchanges")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Print("shutting down")
	return nil
}

func printGenesis(allocSpec string) error {
	allocations := make(map[[20]byte]uint64)
	for _, part := range splitNonEmpty(allocSpec) {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("alloc %q: want pubKeyHashHex=amount", part)
		}
		raw, err := hex.DecodeString(kv[0])
		if err != nil || len(raw) != 20 {
			return fmt.Errorf("alloc %q: pubkey hash must be 20 hex bytes", part)
		}
		amount, err := strconv.ParseUint(kv[1], 10, 64)
		if err != nil {
			return fmt.Errorf("alloc %q: %w", part, err)
		}
		var hash [20]byte
		copy(hash[:], raw)
		allocations[hash] = amount
	}
	genesis := chain.GenesisBlock(allocations)
	fmt.Println(hex.EncodeToString(genesis.Serialize()))
	return nil
}

func loadGenesis(genesisHex, genesisFile string) (*chain.Block, error) {
	if genesisHex == "" && genesisFile == "" {
		return nil, fmt.Errorf("one of -genesis or -genesis-file is required")
	}
	if genesisFile != "" {
		data, err := os.ReadFile(genesisFile)
		if err != nil {
			return nil, err
		}
		genesisHex = strings.TrimSpace(string(data))
	}
	raw, err := hex.DecodeString(strings.TrimSpace(genesisHex))
	if err != nil {
		return nil, fmt.Errorf("genesis hex: %w", err)
	}
	return chain.DeserializeBlock(raw)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
