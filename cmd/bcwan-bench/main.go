// bcwan-bench regenerates every table and figure of the paper's
// evaluation (§5.2) plus the DESIGN.md ablations:
//
//	Fig. 4  message format sizes
//	Fig. 5  exchange latency without block verification (2000 exchanges)
//	Fig. 6  exchange latency with block verification
//	§5.2    duty-cycle budget per spreading factor
//	§6      double-spend exposure vs confirmation policy
//	§4.4    reputation baseline vs script fair exchange
//	extras  block-interval / gateway-count / SF sweeps, legacy baseline,
//	        block-connect throughput vs VerifyWorkers and sig-cache state,
//	        depth-2 reorg cost vs chain length (undo-journal ablation),
//	        wire bytes and propagation time: flood vs inv/compact relay,
//	        gateway cold start: genesis replay vs snapshot bootstrap,
//	        delivery settlement: per-message on-chain vs payment channel
//
// Run everything at paper scale (minutes):
//
//	go run ./cmd/bcwan-bench
//
// Quick pass (seconds):
//
//	go run ./cmd/bcwan-bench -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/experiments"
	"bcwan/internal/lora"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcwan-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcwan-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "scaled-down run (seconds instead of minutes)")
	only := fs.String("only", "", "run a single experiment: fig4|fig5|fig6|budget|doublespend|reputation|sweeps|legacy|blockconnect|reorg|relay|sync|channel|city")
	csvDir := fs.String("csv", "", "also write per-exchange latency series (the raw figure data) as CSV files into this directory")
	resultsDir := fs.String("results", "results", "directory for machine-readable benchmark JSON (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := func(cfg experiments.Config) experiments.Config {
		if *quick {
			cfg.Gateways = 2
			cfg.SensorsPerGateway = 5
			cfg.Exchanges = 60
		}
		return cfg
	}
	want := func(name string) bool { return *only == "" || *only == name }
	out := os.Stdout

	if want("fig4") {
		writeFig4(out)
	}

	if want("fig5") {
		res, err := experiments.Run(scale(experiments.Fig5Config()))
		if err != nil {
			return err
		}
		experiments.WriteFigureReport(out, "Fig. 5: BcWAN process latency (without block verification)",
			experiments.PaperFig5MeanSeconds, res)
		if err := writeCSV(*csvDir, "fig5_latencies.csv", res); err != nil {
			return err
		}
	}

	if want("fig6") {
		res, err := experiments.Run(scale(experiments.Fig6Config()))
		if err != nil {
			return err
		}
		experiments.WriteFigureReport(out, "Fig. 6: BcWAN process latency (with block verification)",
			experiments.PaperFig6MeanSeconds, res)
		if err := writeCSV(*csvDir, "fig6_latencies.csv", res); err != nil {
			return err
		}
	}

	if want("budget") {
		rows, err := experiments.BudgetTable(132, 0.01)
		if err != nil {
			return err
		}
		experiments.WriteBudgetTable(out, rows, 132, 0.01)
	}

	if want("doublespend") {
		trials := 100
		if *quick {
			trials = 20
		}
		var results []*experiments.DoubleSpendResult
		for _, confs := range []int64{0, 1, 2, 6} {
			res, err := experiments.RunDoubleSpend(experiments.DoubleSpendConfig{
				Seed:              11,
				Trials:            trials,
				WaitConfirmations: confs,
				RaceWinProb:       0.5,
				Price:             100,
				BlockInterval:     15 * time.Second,
			})
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		experiments.WriteDoubleSpend(out, results)
	}

	if want("reputation") {
		cmp := experiments.RunReputationComparison(11, 10, 0.3, 0.5, 20_000, 100)
		experiments.WriteReputation(out, cmp)
	}

	if want("sweeps") {
		sweepBase := scale(experiments.Fig5Config())
		sweepBase.Exchanges = min(sweepBase.Exchanges, 200)

		intervals := []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second, 60 * time.Second}
		stallBase := sweepBase
		stallBase.VerificationStall = experiments.Fig6Config().VerificationStall
		byInterval, err := experiments.SweepBlockInterval(stallBase, intervals)
		if err != nil {
			return err
		}
		experiments.WriteSweep(out, "Ablation: block interval (verification on)",
			experiments.DurationLabels(intervals), byInterval)

		gateways := []int{2, 5, 10}
		byGateways, err := experiments.SweepGateways(sweepBase, gateways)
		if err != nil {
			return err
		}
		experiments.WriteSweep(out, "Ablation: gateway count",
			experiments.IntLabels(gateways), byGateways)

		sfs := []lora.SpreadingFactor{lora.SF7, lora.SF8}
		bySF, err := experiments.SweepSpreadingFactor(sweepBase, sfs)
		if err != nil {
			return err
		}
		experiments.WriteSweep(out, "Ablation: spreading factor (SF9+ cannot carry the 148 B payload)",
			experiments.SFLabels(sfs), bySF)

		confs := []int64{0, 1, 2}
		byConfs, err := experiments.SweepConfirmations(sweepBase, confs)
		if err != nil {
			return err
		}
		experiments.WriteSweep(out, "Ablation: confirmation policy",
			experiments.Int64Labels(confs), byConfs)
	}

	if want("blockconnect") {
		cfg := experiments.DefaultBlockConnectConfig()
		if *quick {
			cfg.Blocks = 4
			cfg.TxsPerBlock = 8
		}
		results, err := experiments.RunBlockConnect(cfg)
		if err != nil {
			return err
		}
		experiments.WriteBlockConnect(out, cfg, results)
		if *resultsDir != "" {
			path := filepath.Join(*resultsDir, "BENCH_blockconnect.json")
			if err := experiments.WriteBlockConnectJSON(path, cfg, results); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}

	if want("reorg") {
		cfg := experiments.DefaultReorgConfig()
		if *quick {
			cfg.ChainLengths = []int{20, 60}
			cfg.Iterations = 5
		}
		results, err := experiments.RunReorg(cfg)
		if err != nil {
			return err
		}
		experiments.WriteReorg(out, cfg, results)
		if *resultsDir != "" {
			path := filepath.Join(*resultsDir, "BENCH_reorg.json")
			if err := experiments.WriteReorgJSON(path, cfg, results); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}

	if want("relay") {
		cfg := experiments.DefaultRelayBenchConfig()
		if *quick {
			cfg = experiments.RelayBenchConfig{Nodes: 6, Degree: 2, TxsPerBlock: 6, Blocks: 2}
		}
		results, err := experiments.RunRelayBench(cfg)
		if err != nil {
			return err
		}
		experiments.WriteRelayBench(out, cfg, results)
		if *resultsDir != "" {
			path := filepath.Join(*resultsDir, "BENCH_relay.json")
			if err := experiments.WriteRelayBenchJSON(path, cfg, results); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}

	if want("sync") {
		cfg := experiments.DefaultSyncBenchConfig()
		if *quick {
			cfg = experiments.SyncBenchConfig{Height: 600, SnapshotInterval: 128, SnapshotChunkSize: 32 << 10, TxsPerBlock: 2}
		}
		results, err := experiments.RunSyncBench(cfg)
		if err != nil {
			return err
		}
		experiments.WriteSyncBench(out, cfg, results)
		if *resultsDir != "" {
			path := filepath.Join(*resultsDir, "BENCH_sync.json")
			if err := experiments.WriteSyncBenchJSON(path, cfg, results); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}

	if want("channel") {
		cfg := experiments.DefaultChannelBenchConfig()
		if *quick {
			cfg.Deliveries = 30
			cfg.Capacity = 10_000
		}
		results, err := experiments.RunChannelBench(cfg)
		if err != nil {
			return err
		}
		experiments.WriteChannelBench(out, cfg, results)
		if *resultsDir != "" {
			path := filepath.Join(*resultsDir, "BENCH_channel.json")
			if err := experiments.WriteChannelBenchJSON(path, cfg, results); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}

	if want("city") {
		cfg := experiments.DefaultCityConfig()
		if *quick {
			cfg = experiments.QuickCityConfig()
		}
		results, err := experiments.RunCityBench(cfg)
		if err != nil {
			return err
		}
		experiments.WriteCityBench(out, cfg, results)
		if *resultsDir != "" {
			path := filepath.Join(*resultsDir, "BENCH_city.json")
			if err := experiments.WriteCityBenchJSON(path, cfg, results); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n\n", path)
		}
	}

	if want("legacy") {
		cfg := scale(experiments.Fig5Config())
		legacy, err := experiments.LegacyLatency(cfg, 2000)
		if err != nil {
			return err
		}
		res, err := experiments.Run(cfg)
		if err != nil {
			return err
		}
		experiments.WriteLegacyComparison(out, legacy, res)
	}
	return nil
}

// writeFig4 prints the message-format arithmetic of Fig. 4 and §5.1.
func writeFig4(out *os.File) {
	fmt.Fprintln(out, "== Fig. 4: encrypted message format ==")
	fmt.Fprintf(out, "AES-256-CBC frame: 1 B len + %d B IV + 1 B len + 16 B ciphertext = %d B\n",
		bccrypto.FrameIVLen, bccrypto.CanonicalFrameLen)
	fmt.Fprintf(out, "RSA-512 double encryption Em:  %d B\n", bccrypto.RSA512ModulusLen)
	fmt.Fprintf(out, "RSA-512 signature Sig:         %d B\n", bccrypto.RSA512ModulusLen)
	fmt.Fprintf(out, "minimum crypto payload:        %d B (paper: 128 B)\n", 2*bccrypto.RSA512ModulusLen)
	fmt.Fprintf(out, "with 20 B @R + 13 B MAC header: %d B on air\n", 2*bccrypto.RSA512ModulusLen+20+13)
	fmt.Fprintln(out)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeCSV dumps a result's per-exchange latencies — the raw series the
// paper's scatter figures plot — as "index,latency_seconds" rows.
func writeCSV(dir, name string, res *experiments.Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "exchange,latency_seconds"); err != nil {
		return err
	}
	for i, l := range res.Latencies {
		if _, err := fmt.Fprintf(f, "%d,%.6f\n", i, l.Seconds()); err != nil {
			return err
		}
	}
	return nil
}
